//! Workload profiles: parameterized synthetic generators.
//!
//! The paper drives its simulations with SPEC cpu2006/cpu2017, PARSEC 3.0,
//! and NPB 3.3.1 binaries. Those are licensed artifacts we cannot ship, so
//! each workload is replaced by a seeded synthetic generator whose
//! parameters are calibrated against the paper's own published
//! characterization: LLC mpki (Table V) and the architecture-agnostic
//! memory features (Table VI). The generator mixes three access regimes —
//! a Zipf-skewed hot set, sequential streaming, and uniform references
//! over the full footprint — with separately-sized read and write
//! footprints so read/write entropy can diverge the way Table VI shows.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::access::{AccessKind, Trace, TraceEvent, BLOCK_BYTES};
use crate::suite::Suite;
use crate::zipf::Zipf;

/// Base virtual address for generated regions (an arbitrary, page-aligned
/// location well above null).
const REGION_BASE: u64 = 0x1000_0000;

/// A parameterized synthetic workload.
///
/// Construct via [`WorkloadProfile::builder`]; the 20 paper workloads live
/// in [`crate::workloads`].
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    name: String,
    suite: Suite,
    description: String,
    threads: u8,
    mem_ratio: f64,
    read_fraction: f64,
    footprint_blocks: u64,
    hot_fraction: f64,
    hot_probability: f64,
    zipf_alpha: f64,
    stream_fraction: f64,
    write_footprint_fraction: f64,
    shared_fraction: f64,
    relative_volume: f64,
    stream_dwell: u32,
    paper_mpki: f64,
}

impl WorkloadProfile {
    /// Starts building a profile.
    pub fn builder(name: impl Into<String>, suite: Suite) -> WorkloadProfileBuilder {
        WorkloadProfileBuilder {
            inner: WorkloadProfile {
                name: name.into(),
                suite,
                description: String::new(),
                threads: 1,
                mem_ratio: 0.35,
                read_fraction: 0.7,
                footprint_blocks: 64 * 1024,
                hot_fraction: 0.2,
                hot_probability: 0.6,
                zipf_alpha: 0.8,
                stream_fraction: 0.2,
                write_footprint_fraction: 1.0,
                shared_fraction: 0.25,
                relative_volume: 1.0,
                stream_dwell: 8,
                paper_mpki: 0.0,
            },
        }
    }

    /// Workload name as the paper prints it (e.g. `"deepsjeng"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Originating benchmark suite.
    pub fn suite(&self) -> Suite {
        self.suite
    }

    /// One-line description (Table V's description column).
    pub fn description(&self) -> &str {
        &self.description
    }

    /// Thread count (1 for the single-threaded suites, 4 for the
    /// multi-threaded ones on the quad-core Gainestown).
    pub fn threads(&self) -> u8 {
        self.threads
    }

    /// Whether this is a multi-threaded workload.
    pub fn is_multithreaded(&self) -> bool {
        self.threads > 1
    }

    /// Whether this is an AI/statistical-inference workload: the paper's
    /// cpu2017 trio or the deep-learning extension suite.
    pub fn is_ai(&self) -> bool {
        matches!(self.suite, Suite::Cpu2017 | Suite::Fathom)
    }

    /// The LLC mpki the paper reports for this workload (Table V).
    pub fn paper_mpki(&self) -> f64 {
        self.paper_mpki
    }

    /// Relative access volume: a multiplier experiment runners apply to
    /// their base trace length. Table VI shows exchange2/x264/lu executing
    /// an order of magnitude more accesses than the median workload; this
    /// knob reproduces that total-volume asymmetry without forcing every
    /// workload to the largest trace.
    pub fn relative_volume(&self) -> f64 {
        self.relative_volume
    }

    /// Converts a base *total* access budget into this workload's
    /// per-thread trace length: scaled by the relative volume and divided
    /// across threads (a parallel program splits its work, it does not
    /// multiply it — Table VI's totals for the multi-threaded NPB
    /// workloads sit below the single-threaded outliers).
    pub fn scaled_accesses(&self, base: usize) -> usize {
        (((base as f64) * self.relative_volume / f64::from(self.threads.max(1))).round() as usize)
            .max(1)
    }

    /// Returns a copy of this profile running with a different thread
    /// count (all other behaviour parameters preserved). The total
    /// problem stays fixed — strong scaling.
    pub fn with_threads(&self, threads: u8) -> WorkloadProfile {
        let mut p = self.clone();
        p.threads = threads.max(1);
        p
    }

    /// Returns a copy with a different thread count under *weak scaling*:
    /// each thread keeps its per-thread working set and access volume, so
    /// the total footprint and work grow with the thread count. This is
    /// the regime of the paper's Section V-C core sweep, where "capacity
    /// is an increasing strain on the systems as cores increase".
    pub fn with_threads_weak_scaling(&self, threads: u8) -> WorkloadProfile {
        let threads = threads.max(1);
        let factor = f64::from(threads) / f64::from(self.threads.max(1));
        let mut p = self.clone();
        p.threads = threads;
        p.footprint_blocks = ((p.footprint_blocks as f64 * factor) as u64).max(1);
        p.relative_volume *= factor;
        p
    }

    /// Total unique 64 B blocks the generator can touch.
    pub fn footprint_blocks(&self) -> u64 {
        self.footprint_blocks
    }

    /// Fraction of instructions that access memory.
    pub fn mem_ratio(&self) -> f64 {
        self.mem_ratio
    }

    /// Fraction of memory accesses that are reads.
    pub fn read_fraction(&self) -> f64 {
        self.read_fraction
    }

    /// Streaming dwell: consecutive streaming accesses spent inside one
    /// 64 B block before advancing. Higher dwell = more spatial reuse per
    /// block (GemsFDTD-style long bursts), lower = pointer-walk-like.
    pub fn stream_dwell(&self) -> u32 {
        self.stream_dwell
    }

    /// Generates an interleaved trace with `accesses_per_thread` events
    /// per thread, deterministically from `seed`.
    ///
    /// The same `(profile, seed, length)` triple always yields the same
    /// trace, which keeps every experiment in the repository reproducible.
    pub fn generate(&self, seed: u64, accesses_per_thread: usize) -> Trace {
        let threads = self.threads.max(1);
        let mut lanes: Vec<Vec<TraceEvent>> = Vec::with_capacity(usize::from(threads));
        for tid in 0..threads {
            lanes.push(self.generate_thread(seed, tid, accesses_per_thread));
        }
        // Round-robin interleave, the arrival order a symmetric multicore
        // would roughly produce.
        let mut events = Vec::with_capacity(accesses_per_thread * usize::from(threads));
        for i in 0..accesses_per_thread {
            for lane in &lanes {
                events.push(lane[i]);
            }
        }
        Trace::new(events, threads)
    }

    /// Like [`WorkloadProfile::generate`], but memoized through the
    /// process-wide [`crate::cache`]: the first call generates, later
    /// calls with the same `(profile, seed, length)` return a
    /// pointer-equal `Arc` to the same immutable trace. Experiment
    /// runners use this so e.g. fig1, fig4, and the selection study
    /// replay one shared copy of each trace.
    pub fn generate_shared(&self, seed: u64, accesses_per_thread: usize) -> std::sync::Arc<Trace> {
        crate::cache::fetch(self, seed, accesses_per_thread)
    }

    fn generate_thread(&self, seed: u64, tid: u8, count: usize) -> Vec<TraceEvent> {
        let mut rng = SmallRng::seed_from_u64(
            seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(u64::from(tid) + 1),
        );
        let layout = RegionLayout::new(self, tid);
        let hot_blocks = ((layout.private_blocks as f64 * self.hot_fraction) as u64).max(1);
        let zipf = Zipf::new(hot_blocks, self.zipf_alpha);
        let mean_gap = (1.0 / self.mem_ratio - 1.0).max(0.0);
        let mut stream_cursor: u64 = rng.random_range(0..layout.private_blocks.max(1));
        let dwell = u64::from(self.stream_dwell.max(1));
        let mut stream_pos: u64 = 0;

        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let kind = if rng.random::<f64>() < self.read_fraction {
                AccessKind::Read
            } else {
                AccessKind::Write
            };

            // Pick a block in region-local coordinates.
            let r: f64 = rng.random();
            let (region_private, block_in_region) = if r < self.stream_fraction {
                // Sequential streaming: dwell inside the block for
                // `stream_dwell` word-step accesses, then advance.
                stream_pos += 1;
                if stream_pos >= dwell {
                    stream_pos = 0;
                    stream_cursor = (stream_cursor + 1) % layout.private_blocks.max(1);
                }
                (true, stream_cursor)
            } else if rng.random::<f64>() < self.hot_probability {
                (self.pick_private(&mut rng, &layout), zipf.sample(&mut rng))
            } else {
                let region = self.pick_private(&mut rng, &layout);
                let span = if region {
                    layout.private_blocks
                } else {
                    layout.shared_blocks
                };
                (region, rng.random_range(0..span.max(1)))
            };

            // Writes are folded into the (often smaller) write footprint,
            // which is what separates write entropy/footprint from read
            // entropy/footprint in Table VI.
            let block_in_region = if kind.is_write() {
                let span = if region_private {
                    layout.private_blocks
                } else {
                    layout.shared_blocks
                };
                let wspan = ((span as f64 * self.write_footprint_fraction) as u64).max(1);
                block_in_region % wspan
            } else {
                block_in_region
            };

            let block = if region_private {
                layout.private_base + block_in_region
            } else {
                layout.shared_base + block_in_region
            };
            let offset = u64::from(rng.random_range(0..8u8)) * 8;
            let addr = REGION_BASE
                + block * BLOCK_BYTES
                + if r < self.stream_fraction {
                    (stream_pos * 8) % BLOCK_BYTES
                } else {
                    offset
                };

            let gap = sample_geometric(&mut rng, mean_gap);
            out.push(TraceEvent {
                tid,
                addr,
                kind,
                gap_instructions: gap,
            });
        }
        out
    }

    /// Whether a non-streaming access lands in this thread's private
    /// region (vs the shared region). Single-threaded workloads are all
    /// private.
    fn pick_private(&self, rng: &mut SmallRng, layout: &RegionLayout) -> bool {
        layout.shared_blocks == 0 || rng.random::<f64>() >= self.shared_fraction
    }
}

/// Block-granular memory layout: `[shared | t0 | t1 | ...]`.
#[derive(Debug, Clone, Copy)]
struct RegionLayout {
    shared_base: u64,
    shared_blocks: u64,
    private_base: u64,
    private_blocks: u64,
}

impl RegionLayout {
    fn new(profile: &WorkloadProfile, tid: u8) -> Self {
        let threads = u64::from(profile.threads.max(1));
        let shared_blocks = if threads > 1 {
            (profile.footprint_blocks as f64 * profile.shared_fraction) as u64
        } else {
            0
        };
        let private_blocks = ((profile.footprint_blocks - shared_blocks) / threads).max(1);
        RegionLayout {
            shared_base: 0,
            shared_blocks,
            private_base: shared_blocks + u64::from(tid) * private_blocks,
            private_blocks,
        }
    }
}

/// Geometric-ish gap sampler with the given mean, via the exponential
/// inverse CDF.
fn sample_geometric(rng: &mut SmallRng, mean: f64) -> u32 {
    if mean <= 0.0 {
        return 0;
    }
    let u: f64 = rng.random::<f64>().max(1e-12);
    // Round (not floor) so the sampled mean tracks `mean` instead of
    // undershooting by ~0.5 instructions per access.
    (-mean * u.ln()).min(10_000.0).round() as u32
}

/// Builder for [`WorkloadProfile`] (C-BUILDER).
#[derive(Debug, Clone)]
pub struct WorkloadProfileBuilder {
    inner: WorkloadProfile,
}

macro_rules! profile_setter {
    ($(#[$meta:meta])* $name:ident, $ty:ty) => {
        $(#[$meta])*
        pub fn $name(mut self, value: $ty) -> Self {
            self.inner.$name = value;
            self
        }
    };
}

impl WorkloadProfileBuilder {
    profile_setter!(
        /// Sets the thread count.
        threads,
        u8
    );
    profile_setter!(
        /// Sets the fraction of instructions that access memory.
        mem_ratio,
        f64
    );
    profile_setter!(
        /// Sets the fraction of memory accesses that are reads.
        read_fraction,
        f64
    );
    profile_setter!(
        /// Sets the total unique 64 B blocks.
        footprint_blocks,
        u64
    );
    profile_setter!(
        /// Sets the hot-set size as a fraction of the footprint.
        hot_fraction,
        f64
    );
    profile_setter!(
        /// Sets the probability a non-streaming access hits the hot set.
        hot_probability,
        f64
    );
    profile_setter!(
        /// Sets the Zipf skew within the hot set.
        zipf_alpha,
        f64
    );
    profile_setter!(
        /// Sets the fraction of sequential streaming accesses.
        stream_fraction,
        f64
    );
    profile_setter!(
        /// Sets the write footprint as a fraction of the read footprint.
        write_footprint_fraction,
        f64
    );
    profile_setter!(
        /// Sets the multi-threaded shared-region fraction.
        shared_fraction,
        f64
    );
    profile_setter!(
        /// Records the paper's Table V LLC mpki for this workload.
        paper_mpki,
        f64
    );
    profile_setter!(
        /// Sets the relative access volume multiplier (default 1.0).
        relative_volume,
        f64
    );
    profile_setter!(
        /// Sets the streaming dwell in accesses per block (default 8).
        stream_dwell,
        u32
    );

    /// Sets the description line.
    pub fn description(mut self, text: impl Into<String>) -> Self {
        self.inner.description = text.into();
        self
    }

    /// Finalizes the profile.
    ///
    /// # Panics
    ///
    /// Panics if any fraction is outside `[0, 1]` or the footprint is
    /// zero — profiles are compiled-in data, so this is a programming
    /// error, not an input error.
    pub fn build(self) -> WorkloadProfile {
        let p = self.inner;
        for (what, v) in [
            ("mem_ratio", p.mem_ratio),
            ("read_fraction", p.read_fraction),
            ("hot_fraction", p.hot_fraction),
            ("hot_probability", p.hot_probability),
            ("stream_fraction", p.stream_fraction),
            ("write_footprint_fraction", p.write_footprint_fraction),
            ("shared_fraction", p.shared_fraction),
        ] {
            assert!((0.0..=1.0).contains(&v), "{what} out of [0,1]: {v}");
        }
        assert!(p.mem_ratio > 0.0, "mem_ratio must be positive");
        assert!(
            p.relative_volume > 0.0 && p.relative_volume.is_finite(),
            "relative_volume must be positive"
        );
        assert!(p.footprint_blocks > 0, "footprint must be non-empty");
        assert!(p.threads > 0, "threads must be positive");
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> WorkloadProfile {
        WorkloadProfile::builder("demo", Suite::Cpu2006)
            .footprint_blocks(4096)
            .read_fraction(0.75)
            .mem_ratio(0.4)
            .paper_mpki(10.0)
            .build()
    }

    #[test]
    fn generation_is_deterministic() {
        let p = demo();
        let a = p.generate(7, 5_000);
        let b = p.generate(7, 5_000);
        assert_eq!(a.events(), b.events());
        let c = p.generate(8, 5_000);
        assert_ne!(a.events(), c.events());
    }

    #[test]
    fn read_fraction_is_respected() {
        let t = demo().generate(1, 50_000);
        let rf = t.reads() as f64 / t.len() as f64;
        assert!((rf - 0.75).abs() < 0.02, "{rf}");
    }

    #[test]
    fn mem_ratio_shapes_instruction_gaps() {
        let t = demo().generate(1, 50_000);
        let ratio = t.len() as f64 / t.total_instructions() as f64;
        assert!((ratio - 0.4).abs() < 0.05, "{ratio}");
    }

    #[test]
    fn addresses_stay_within_footprint() {
        let p = demo();
        let t = p.generate(3, 20_000);
        let max_block = REGION_BASE / BLOCK_BYTES + p.footprint_blocks();
        for e in &t {
            assert!(e.block() >= REGION_BASE / BLOCK_BYTES);
            assert!(e.block() < max_block, "block {} out of range", e.block());
        }
    }

    #[test]
    fn multithreaded_traces_interleave_all_threads() {
        let p = WorkloadProfile::builder("mt", Suite::Npb)
            .threads(4)
            .footprint_blocks(8192)
            .build();
        let t = p.generate(1, 1_000);
        assert_eq!(t.len(), 4_000);
        for tid in 0..4 {
            assert_eq!(t.thread_events(tid).count(), 1_000);
        }
        // Threads mostly work in disjoint private regions but share some
        // blocks.
        let blocks = |tid: u8| {
            t.thread_events(tid)
                .map(|e| e.block())
                .collect::<std::collections::HashSet<_>>()
        };
        let b0 = blocks(0);
        let b1 = blocks(1);
        assert!(b0.intersection(&b1).count() > 0, "no sharing");
        assert!(b0.symmetric_difference(&b1).count() > 0, "fully shared");
    }

    #[test]
    fn smaller_write_footprint_confines_writes() {
        let p = WorkloadProfile::builder("wf", Suite::Cpu2017)
            .footprint_blocks(10_000)
            .write_footprint_fraction(0.05)
            .read_fraction(0.5)
            .hot_probability(0.0)
            .stream_fraction(0.0)
            .build();
        let t = p.generate(5, 40_000);
        let base = REGION_BASE / BLOCK_BYTES;
        let unique = |k: AccessKind| {
            t.iter()
                .filter(|e| e.kind == k)
                .map(|e| e.block() - base)
                .collect::<std::collections::HashSet<_>>()
                .len()
        };
        let wu = unique(AccessKind::Write);
        let ru = unique(AccessKind::Read);
        assert!(wu * 4 < ru, "writes {wu} vs reads {ru}");
    }

    #[test]
    fn streaming_workload_walks_sequentially() {
        let p = WorkloadProfile::builder("stream", Suite::Npb)
            .footprint_blocks(100_000)
            .stream_fraction(1.0)
            .build();
        let t = p.generate(1, 1_000);
        // Consecutive accesses advance by 8 bytes or move to next block.
        let mut sequential = 0;
        for w in t.events().windows(2) {
            let d = w[1].addr.wrapping_sub(w[0].addr);
            if d == 8 || d == 8 + 56 {
                sequential += 1;
            }
        }
        assert!(sequential > 900, "{sequential}");
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn builder_rejects_bad_fractions() {
        let _ = WorkloadProfile::builder("bad", Suite::Cpu2006)
            .read_fraction(1.5)
            .build();
    }

    #[test]
    fn ai_detection_follows_suite() {
        let p = WorkloadProfile::builder("x", Suite::Cpu2017).build();
        assert!(p.is_ai());
        assert!(!demo().is_ai());
    }
}
