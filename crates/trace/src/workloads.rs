//! The paper's 20 workloads (Table V) as calibrated synthetic profiles.
//!
//! Each profile's generator parameters are set from the paper's published
//! characterization: read/write mix and footprint shape from Table VI,
//! LLC pressure from Table V's mpki column (footprints are scaled to keep
//! traces laptop-tractable while preserving their relation to the 2 MB
//! LLC — what matters is which side of the capacity boundary a working
//! set falls on, and by how much).

use crate::profile::WorkloadProfile;
use crate::suite::Suite;

/// Number of threads the multi-threaded suites run with (one per core on
/// the quad-core Gainestown, Table IV).
pub const MT_THREADS: u8 = 4;

fn p(name: &str, suite: Suite) -> crate::profile::WorkloadProfileBuilder {
    WorkloadProfile::builder(name, suite)
}

/// bzip2 — compression/decompression, s.t. (mpki 142.69).
pub fn bzip2() -> WorkloadProfile {
    p("bzip2", Suite::Cpu2006)
        .description("Compression/Decompression, s.t.")
        .paper_mpki(142.69)
        .footprint_blocks(1 << 17)
        .hot_fraction(0.5)
        .hot_probability(0.55)
        .zipf_alpha(0.7)
        .stream_fraction(0.1)
        .write_footprint_fraction(0.3)
        .read_fraction(0.745)
        .mem_ratio(0.42)
        .relative_volume(1.0)
        .build()
}

/// gamess — quantum chemistry computations, s.t. (mpki 12.83).
pub fn gamess() -> WorkloadProfile {
    p("gamess", Suite::Cpu2006)
        .description("Quantum computations, s.t.")
        .paper_mpki(12.83)
        .footprint_blocks(3 << 14)
        .hot_fraction(0.15)
        .hot_probability(0.88)
        .zipf_alpha(0.8)
        .stream_fraction(0.05)
        .write_footprint_fraction(0.5)
        .read_fraction(0.75)
        .mem_ratio(0.3)
        .relative_volume(0.8)
        .build()
}

/// GemsFDTD — 3D Maxwell solver, s.t. (mpki 12.56). The largest working
/// set in the suite by two orders of magnitude (Table VI).
pub fn gems_fdtd() -> WorkloadProfile {
    p("GemsFDTD", Suite::Cpu2006)
        .description("Maxwell solver 3D, s.t.")
        .paper_mpki(12.56)
        .footprint_blocks(1 << 18)
        .hot_fraction(0.3)
        .hot_probability(0.45)
        .zipf_alpha(0.4)
        .stream_fraction(0.65)
        .write_footprint_fraction(0.95)
        .read_fraction(0.65)
        .mem_ratio(0.33)
        .relative_volume(0.7)
        .stream_dwell(16)
        .build()
}

/// gobmk — Go playing/analysis, s.t. (mpki 38.08).
pub fn gobmk() -> WorkloadProfile {
    p("gobmk", Suite::Cpu2006)
        .description("Plays Go and analyzes, s.t.")
        .paper_mpki(38.08)
        .footprint_blocks(1 << 18)
        .hot_fraction(0.8)
        .hot_probability(0.85)
        .zipf_alpha(0.25)
        .stream_fraction(0.05)
        .write_footprint_fraction(0.5)
        .read_fraction(0.7)
        .mem_ratio(0.35)
        .relative_volume(4.0)
        .build()
}

/// milc — lattice gauge theory, s.t. (mpki 16.46).
pub fn milc() -> WorkloadProfile {
    p("milc", Suite::Cpu2006)
        .description("Lattice gauge theory, s.t., MIMD")
        .paper_mpki(16.46)
        .footprint_blocks(3 << 15)
        .hot_fraction(0.3)
        .hot_probability(0.5)
        .zipf_alpha(0.4)
        .stream_fraction(0.5)
        .write_footprint_fraction(0.8)
        .read_fraction(0.75)
        .mem_ratio(0.33)
        .relative_volume(0.8)
        .stream_dwell(16)
        .build()
}

/// perlbench — Perl interpreter, s.t. (mpki 7.57).
pub fn perlbench() -> WorkloadProfile {
    p("perlbench", Suite::Cpu2006)
        .description("Perl interpreter, s.t.")
        .paper_mpki(7.57)
        .footprint_blocks(40 << 10)
        .hot_fraction(0.1)
        .hot_probability(0.9)
        .zipf_alpha(1.0)
        .stream_fraction(0.05)
        .write_footprint_fraction(0.6)
        .read_fraction(0.65)
        .mem_ratio(0.3)
        .relative_volume(0.8)
        .build()
}

/// tonto — quantum chemistry package, s.t. (mpki 12.39).
pub fn tonto() -> WorkloadProfile {
    p("tonto", Suite::Cpu2006)
        .description("Quantum package, s.t.")
        .paper_mpki(12.39)
        .footprint_blocks(3 << 14)
        .hot_fraction(0.02)
        .hot_probability(0.9)
        .zipf_alpha(0.8)
        .stream_fraction(0.08)
        .write_footprint_fraction(0.35)
        .read_fraction(0.7)
        .mem_ratio(0.32)
        .relative_volume(0.5)
        .build()
}

/// x264 — MPEG-4 encoding, s.t. (mpki 17.81). Strongly read-heavy with a
/// tiny write working set (Table VI: 90% write footprint of 3.56 K vs
/// 1.59 M for reads).
pub fn x264() -> WorkloadProfile {
    p("x264", Suite::Parsec)
        .description("MPEG-4 encoding, s.t.")
        .paper_mpki(17.81)
        .footprint_blocks(1 << 17)
        .hot_fraction(0.15)
        .hot_probability(0.6)
        .zipf_alpha(0.5)
        .stream_fraction(0.45)
        .write_footprint_fraction(0.001)
        .read_fraction(0.86)
        .mem_ratio(0.35)
        .relative_volume(2.0)
        .stream_dwell(12)
        .build()
}

/// vips — image transformation, m.t. (mpki 5.43).
pub fn vips() -> WorkloadProfile {
    p("vips", Suite::Parsec)
        .description("Image transformation, m.t.")
        .paper_mpki(5.43)
        .threads(MT_THREADS)
        .footprint_blocks(3 << 14)
        .hot_fraction(0.1)
        .hot_probability(0.95)
        .zipf_alpha(0.9)
        .stream_fraction(0.08)
        .write_footprint_fraction(0.6)
        .read_fraction(0.74)
        .mem_ratio(0.33)
        .relative_volume(0.6)
        .shared_fraction(0.2)
        .build()
}

/// cg — conjugate gradient, m.t. (mpki 80.89). Sparse and nearly
/// write-free (Table VI: 0.73 G reads vs 0.04 G writes).
pub fn cg() -> WorkloadProfile {
    p("cg", Suite::Npb)
        .description("Conjugate gradient, m.t.")
        .paper_mpki(80.89)
        .threads(MT_THREADS)
        .footprint_blocks(1 << 17)
        .hot_fraction(0.5)
        .hot_probability(0.35)
        .zipf_alpha(0.2)
        .stream_fraction(0.1)
        .write_footprint_fraction(0.15)
        .read_fraction(0.95)
        .mem_ratio(0.4)
        .relative_volume(0.4)
        .shared_fraction(0.3)
        .build()
}

/// ep — embarrassingly parallel, m.t. (mpki 9.31).
pub fn ep() -> WorkloadProfile {
    p("ep", Suite::Npb)
        .description("Embarrassingly parallel, m.t.")
        .paper_mpki(9.31)
        .threads(MT_THREADS)
        .footprint_blocks(3 << 14)
        .hot_fraction(0.02)
        .hot_probability(0.95)
        .zipf_alpha(1.2)
        .stream_fraction(0.1)
        .write_footprint_fraction(1.0)
        .read_fraction(0.7)
        .mem_ratio(0.28)
        .relative_volume(0.5)
        .shared_fraction(0.05)
        .build()
}

/// ft — discrete 3D FFT, m.t. (mpki 15.39). The most write-balanced
/// workload (Table VI: 0.28 G reads, 0.27 G writes).
pub fn ft() -> WorkloadProfile {
    p("ft", Suite::Npb)
        .description("Discrete 3D FFT, m.t.")
        .paper_mpki(15.39)
        .threads(MT_THREADS)
        .footprint_blocks(3 << 15)
        .hot_fraction(0.3)
        .hot_probability(0.5)
        .zipf_alpha(0.3)
        .stream_fraction(0.5)
        .write_footprint_fraction(0.9)
        .read_fraction(0.51)
        .mem_ratio(0.35)
        .relative_volume(0.25)
        .shared_fraction(0.25)
        .stream_dwell(12)
        .build()
}

/// is — integer sort, m.t. (mpki 35.63).
pub fn is() -> WorkloadProfile {
    p("is", Suite::Npb)
        .description("Integer sort, m.t.")
        .paper_mpki(35.63)
        .threads(MT_THREADS)
        .footprint_blocks(1 << 17)
        .hot_fraction(0.4)
        .hot_probability(0.35)
        .zipf_alpha(0.15)
        .stream_fraction(0.2)
        .write_footprint_fraction(0.7)
        .read_fraction(0.67)
        .mem_ratio(0.38)
        .relative_volume(0.12)
        .shared_fraction(0.3)
        .build()
}

/// lu — LU Gauss-Seidel solver, m.t. (mpki 14.42).
pub fn lu() -> WorkloadProfile {
    p("lu", Suite::Npb)
        .description("LU Gauss-Seidel solver, m.t.")
        .paper_mpki(14.42)
        .threads(MT_THREADS)
        .footprint_blocks(1 << 16)
        .hot_fraction(0.25)
        .hot_probability(0.65)
        .zipf_alpha(0.5)
        .stream_fraction(0.45)
        .write_footprint_fraction(0.9)
        .read_fraction(0.82)
        .mem_ratio(0.34)
        .relative_volume(2.0)
        .shared_fraction(0.2)
        .stream_dwell(16)
        .build()
}

/// mg — multigrid on meshes, m.t. (mpki 65.09).
pub fn mg() -> WorkloadProfile {
    p("mg", Suite::Npb)
        .description("Multigrid on meshes, m.t.")
        .paper_mpki(65.09)
        .threads(MT_THREADS)
        .footprint_blocks(1 << 18)
        .hot_fraction(0.25)
        .hot_probability(0.55)
        .zipf_alpha(0.2)
        .stream_fraction(0.4)
        .write_footprint_fraction(0.95)
        .read_fraction(0.83)
        .mem_ratio(0.38)
        .relative_volume(1.0)
        .shared_fraction(0.25)
        .build()
}

/// sp — scalar penta-diagonal solver, m.t. (mpki 44.35).
pub fn sp() -> WorkloadProfile {
    p("sp", Suite::Npb)
        .description("Scalar penta-diagonal solver, m.t.")
        .paper_mpki(44.35)
        .threads(MT_THREADS)
        .footprint_blocks(1 << 17)
        .hot_fraction(0.4)
        .hot_probability(0.4)
        .zipf_alpha(0.2)
        .stream_fraction(0.4)
        .write_footprint_fraction(0.5)
        .read_fraction(0.69)
        .mem_ratio(0.38)
        .relative_volume(1.5)
        .shared_fraction(0.25)
        .build()
}

/// ua — unstructured adaptive mesh, m.t. (mpki 39.08).
pub fn ua() -> WorkloadProfile {
    p("ua", Suite::Npb)
        .description("Unstructured adaptive mesh, m.t.")
        .paper_mpki(39.08)
        .threads(MT_THREADS)
        .footprint_blocks(1 << 17)
        .hot_fraction(0.3)
        .hot_probability(0.45)
        .zipf_alpha(0.3)
        .stream_fraction(0.3)
        .write_footprint_fraction(0.35)
        .read_fraction(0.63)
        .mem_ratio(0.37)
        .relative_volume(1.5)
        .shared_fraction(0.3)
        .build()
}

/// deepsjeng — AI alpha-beta tree search, s.t. (mpki 159.58). A tiny hot
/// core with an enormous cold transposition table (Table VI: 90% footprint
/// of 4.79 K against 58.9 M unique reads).
pub fn deepsjeng() -> WorkloadProfile {
    p("deepsjeng", Suite::Cpu2017)
        .description("AI: alpha-beta tree search, s.t.")
        .paper_mpki(159.58)
        .footprint_blocks(1 << 19)
        .hot_fraction(0.004)
        .hot_probability(0.35)
        .zipf_alpha(0.9)
        .stream_fraction(0.02)
        .write_footprint_fraction(1.0)
        .read_fraction(0.68)
        .mem_ratio(0.42)
        .relative_volume(1.5)
        .build()
}

/// leela — AI Monte Carlo tree search, s.t. (mpki 24.05).
pub fn leela() -> WorkloadProfile {
    p("leela", Suite::Cpu2017)
        .description("AI: Monte Carlo tree search, s.t.")
        .paper_mpki(24.05)
        .footprint_blocks(1 << 16)
        .hot_fraction(0.01)
        .hot_probability(0.85)
        .zipf_alpha(0.8)
        .stream_fraction(0.05)
        .write_footprint_fraction(1.0)
        .read_fraction(0.72)
        .mem_ratio(0.36)
        .relative_volume(1.2)
        .build()
}

/// exchange2 — AI recursive solution generator, s.t. (mpki 13.50). The
/// smallest unique footprint in the suite but the largest access volume
/// (Table VI), sized near the LLC boundary so conflict misses dominate.
pub fn exchange2() -> WorkloadProfile {
    p("exchange2", Suite::Cpu2017)
        .description("AI: recursive solution generator, s.t.")
        .paper_mpki(13.5)
        .footprint_blocks(40 << 10)
        .hot_fraction(0.02)
        .hot_probability(0.85)
        .zipf_alpha(0.7)
        .stream_fraction(0.15)
        .write_footprint_fraction(0.9)
        .read_fraction(0.59)
        .mem_ratio(0.4)
        .relative_volume(3.0)
        .build()
}

/// All 20 workloads in Table V order.
pub fn all() -> Vec<WorkloadProfile> {
    vec![
        bzip2(),
        gamess(),
        gems_fdtd(),
        gobmk(),
        milc(),
        perlbench(),
        tonto(),
        x264(),
        vips(),
        cg(),
        ep(),
        ft(),
        is(),
        lu(),
        mg(),
        sp(),
        ua(),
        deepsjeng(),
        leela(),
        exchange2(),
    ]
}

/// Looks up a workload by Table V name.
pub fn by_name(name: &str) -> Option<WorkloadProfile> {
    all().into_iter().find(|w| w.name() == name)
}

/// The single-threaded workloads.
pub fn single_threaded() -> Vec<WorkloadProfile> {
    all()
        .into_iter()
        .filter(|w| !w.is_multithreaded())
        .collect()
}

/// The multi-threaded workloads.
pub fn multi_threaded() -> Vec<WorkloadProfile> {
    all()
        .into_iter()
        .filter(WorkloadProfile::is_multithreaded)
        .collect()
}

/// The cpu2017 AI workloads Section VI's specialized analysis uses.
pub fn ai() -> Vec<WorkloadProfile> {
    all().into_iter().filter(WorkloadProfile::is_ai).collect()
}

/// The 16 workloads the paper characterizes with PRISM (Section IV-B
/// excludes gamess, gobmk, milc, and perlbench for PRISM
/// incompatibilities).
pub fn characterized() -> Vec<WorkloadProfile> {
    const EXCLUDED: [&str; 4] = ["gamess", "gobmk", "milc", "perlbench"];
    all()
        .into_iter()
        .filter(|w| !EXCLUDED.contains(&w.name()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_workloads_in_table_5_order() {
        let names: Vec<_> = all().iter().map(|w| w.name().to_owned()).collect();
        assert_eq!(names.len(), 20);
        assert_eq!(names[0], "bzip2");
        assert_eq!(names[19], "exchange2");
        assert!(names.contains(&"GemsFDTD".to_owned()));
    }

    #[test]
    fn suite_split_matches_paper() {
        let count = |s: Suite| all().iter().filter(|w| w.suite() == s).count();
        assert_eq!(count(Suite::Cpu2006), 7);
        assert_eq!(count(Suite::Parsec), 2);
        assert_eq!(count(Suite::Npb), 8);
        assert_eq!(count(Suite::Cpu2017), 3);
    }

    #[test]
    fn threading_split_matches_paper() {
        // Multi-threaded: vips + all 8 NPB workloads.
        assert_eq!(multi_threaded().len(), 9);
        assert_eq!(single_threaded().len(), 11);
        assert!(multi_threaded().iter().all(|w| w.threads() == MT_THREADS));
    }

    #[test]
    fn ai_workloads_are_the_cpu2017_trio() {
        let names: Vec<_> = ai().iter().map(|w| w.name().to_owned()).collect();
        assert_eq!(names, ["deepsjeng", "leela", "exchange2"]);
    }

    #[test]
    fn characterized_set_excludes_prism_incompatible() {
        let c = characterized();
        assert_eq!(c.len(), 16);
        for name in ["gamess", "gobmk", "milc", "perlbench"] {
            assert!(c.iter().all(|w| w.name() != name));
        }
    }

    #[test]
    fn every_workload_exceeds_the_mpki_5_selection_bar() {
        // Table V's selection criterion: LLC mpki > 5.
        for w in all() {
            assert!(w.paper_mpki() > 5.0, "{}", w.name());
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("deepsjeng").is_some());
        assert!(by_name("doom").is_none());
    }

    #[test]
    fn deepsjeng_has_extreme_footprint_and_tiny_hot_set() {
        let d = deepsjeng();
        assert!(d.footprint_blocks() >= 1 << 19);
        let leela = leela();
        assert!(d.footprint_blocks() > 4 * leela.footprint_blocks());
    }

    #[test]
    fn all_profiles_generate_nonempty_traces() {
        for w in all() {
            let t = w.generate(1, 500);
            assert_eq!(t.len(), 500 * usize::from(w.threads()));
            assert!(t.reads() > 0 && t.writes() > 0, "{}", w.name());
        }
    }
}

// --- Deep-learning extension suite (paper Section IV's pointer to
// Fathom/TBD; not part of Table V) ----------------------------------------

/// conv_inference — CNN inference layer (extension suite). Streams weight
/// tensors and activation planes: long sequential bursts over a
/// tens-of-MB model, tiny write footprint (activations ping-pong in a
/// small buffer).
pub fn conv_inference() -> WorkloadProfile {
    p("conv_inference", Suite::Fathom)
        .description("DL: CNN inference, weight streaming, s.t.")
        .paper_mpki(0.0)
        .footprint_blocks(1 << 19)
        .hot_fraction(0.02)
        .hot_probability(0.25)
        .zipf_alpha(0.3)
        .stream_fraction(0.7)
        .stream_dwell(16)
        .write_footprint_fraction(0.01)
        .read_fraction(0.9)
        .mem_ratio(0.45)
        .build()
}

/// lstm_inference — recurrent-network inference (extension suite).
/// Repeated matrix–vector sweeps over a model that sits near the LLC
/// boundary, with a recurrent state vector rewritten every step.
pub fn lstm_inference() -> WorkloadProfile {
    p("lstm_inference", Suite::Fathom)
        .description("DL: LSTM inference, recurrent mat-vec, s.t.")
        .paper_mpki(0.0)
        .footprint_blocks(48 << 10)
        .hot_fraction(0.9)
        .hot_probability(0.55)
        .zipf_alpha(0.1)
        .stream_fraction(0.4)
        .stream_dwell(8)
        .write_footprint_fraction(0.05)
        .read_fraction(0.85)
        .mem_ratio(0.42)
        .build()
}

/// embedding_lookup — recommendation-style embedding gather (extension
/// suite). Random single-row reads over a table far larger than any
/// cache, with a small dense MLP on top — the memory behaviour TBD's
/// recommendation models exhibit.
pub fn embedding_lookup() -> WorkloadProfile {
    p("embedding_lookup", Suite::Fathom)
        .description("DL: embedding-table gather + MLP, s.t.")
        .paper_mpki(0.0)
        .footprint_blocks(1 << 20)
        .hot_fraction(0.003)
        .hot_probability(0.45)
        .zipf_alpha(1.1)
        .stream_fraction(0.05)
        .write_footprint_fraction(0.01)
        .read_fraction(0.93)
        .mem_ratio(0.40)
        .build()
}

/// The deep-learning extension workloads.
pub fn deep_learning() -> Vec<WorkloadProfile> {
    vec![conv_inference(), lstm_inference(), embedding_lookup()]
}

#[cfg(test)]
mod dl_tests {
    use super::*;

    #[test]
    fn extension_suite_is_separate_from_table_5() {
        assert_eq!(deep_learning().len(), 3);
        assert_eq!(all().len(), 20, "Table V stays untouched");
        for w in deep_learning() {
            assert_eq!(w.suite(), Suite::Fathom);
            assert!(w.is_ai());
            assert!(
                by_name(w.name()).is_none(),
                "{} leaked into Table V",
                w.name()
            );
        }
    }

    #[test]
    fn dl_workloads_are_read_dominated_with_tiny_write_sets() {
        for w in deep_learning() {
            assert!(w.read_fraction() >= 0.85, "{}", w.name());
            let t = w.generate(3, 10_000);
            assert!(t.reads() > 5 * t.writes(), "{}", w.name());
        }
    }

    #[test]
    fn embedding_gather_has_the_widest_footprint() {
        let traces: Vec<_> = deep_learning()
            .iter()
            .map(|w| {
                let t = w.generate(3, 20_000);
                let unique: std::collections::HashSet<u64> = t.iter().map(|e| e.block()).collect();
                (w.name().to_owned(), unique.len())
            })
            .collect();
        let emb = traces.iter().find(|t| t.0 == "embedding_lookup").unwrap().1;
        let lstm = traces.iter().find(|t| t.0 == "lstm_inference").unwrap().1;
        assert!(emb > lstm, "{emb} vs {lstm}");
    }
}
