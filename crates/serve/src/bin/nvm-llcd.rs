//! `nvm-llcd` — the evaluation daemon.
//!
//! Serves `/eval`, `/row`, `/healthz`, and `/statsz` until SIGTERM or
//! SIGINT, then drains in-flight work and exits. See `--help`.

use nvm_llc_serve::{run, ServeConfig, USAGE};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "nvm-llcd: HTTP evaluation service over the workload x technology matrix\n\n{USAGE}"
        );
        return;
    }
    let config = match ServeConfig::parse_args(&args) {
        Ok(config) => config,
        Err(message) => {
            eprintln!("nvm-llcd: {message}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    if let Err(error) = run(config) {
        eprintln!("nvm-llcd: {error}");
        std::process::exit(1);
    }
}
