//! Consistent-hash cluster serving over the persist keyspace.
//!
//! A cluster is `N` `nvm-llcd` shards plus (optionally) thin routers.
//! Every participant builds the same [`ShardMap`]: a consistent-hash
//! ring of [`VNODES`] virtual points per shard over the 64-bit fold of
//! the 128-bit content-addressed keyspace
//! ([`nvm_llc_store::Key::ring_point`]). A request's owner is the shard
//! whose ring point follows the request's
//! [routing key](nvm_llc_sim::persist::request_key) — derived from the
//! request line alone, so a router needs no simulator state and two
//! nodes never disagree.
//!
//! Forwarding is **single-hop** by construction: any forwarded request
//! carries the [`HOP_HEADER`], and a shard that receives a marked
//! request always evaluates locally instead of proxying again. Combined
//! with the local fallback (a shard that cannot reach the owner
//! evaluates the request itself, and the location-independent persist
//! keys make the answer byte-identical wherever it is computed), a
//! valid key is never 404'd and no request loops.

use std::fmt::Write as _;

use nvm_llc_store::Key;

/// Virtual ring points per shard. 64 points keeps the keyspace split
/// within a few percent of even for small clusters while the whole ring
/// stays a sub-kilobyte sorted array.
pub const VNODES: usize = 64;

/// Header marking a request that has already been forwarded once; the
/// receiving shard must evaluate locally, never proxy again.
pub const HOP_HEADER: &str = "x-nvmllc-hop";

/// The consistent-hash ring: identical on every node of a cluster.
#[derive(Debug, Clone)]
pub struct ShardMap {
    shard_count: usize,
    /// `(ring point, shard id)`, sorted by point.
    points: Vec<(u64, u32)>,
}

impl ShardMap {
    /// Builds the ring for `shard_count` shards (>= 1).
    pub fn new(shard_count: usize) -> ShardMap {
        let shard_count = shard_count.max(1);
        let mut points = Vec::with_capacity(shard_count * VNODES);
        for shard in 0..shard_count {
            for replica in 0..VNODES {
                // The vnode identity is digested like any other content
                // key, so ring placement is process-independent.
                let identity = format!("vnode|{shard}|{replica}");
                points.push((Key::digest(identity.as_bytes()).ring_point(), shard as u32));
            }
        }
        points.sort_unstable();
        points.dedup_by_key(|(p, _)| *p);
        ShardMap {
            shard_count,
            points,
        }
    }

    /// Number of shards on the ring.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// The shard owning `key`: the first ring point at or after the
    /// key's fold, wrapping at the top.
    pub fn owner(&self, key: &Key) -> usize {
        let point = key.ring_point();
        let idx = self.points.partition_point(|&(p, _)| p < point);
        let (_, shard) = self.points[idx % self.points.len()];
        shard as usize
    }

    /// The shard map as a JSON object for `/statsz`: shard count, vnode
    /// count, and the fraction of a large key sample each shard owns.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"shard_count\":{},\"vnodes_per_shard\":{VNODES},\"ring_points\":{}",
            self.shard_count,
            self.points.len(),
        );
        // Ownership share of the ring itself (arc lengths), exact and
        // cheap — no sampling.
        let mut arcs = vec![0u128; self.shard_count];
        for (i, &(point, shard)) in self.points.iter().enumerate() {
            let prev = if i == 0 {
                // The wrap-around arc from the last point.
                let (last, _) = self.points[self.points.len() - 1];
                point.wrapping_sub(last)
            } else {
                point - self.points[i - 1].0
            };
            arcs[shard as usize] += u128::from(prev);
        }
        out.push_str(",\"ownership\":[");
        for (i, arc) in arcs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let share = *arc as f64 / 2f64.powi(64);
            let _ = write!(out, "{share:.4}");
        }
        out.push_str("]}");
        out
    }
}

/// Shard-mode configuration for one `nvm-llcd`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterConfig {
    /// This node's shard id in `0..shard_count`.
    pub shard_id: usize,
    /// Total shards on the ring.
    pub shard_count: usize,
    /// Every shard's address, indexed by shard id (`peers[shard_id]`
    /// is this node's own public address and is never dialed).
    pub peers: Vec<String>,
}

impl ClusterConfig {
    /// Validates the id/count/peers triple.
    pub fn validate(&self) -> Result<(), String> {
        if self.shard_count < 1 {
            return Err("--shard-count wants an integer >= 1".into());
        }
        if self.shard_id >= self.shard_count {
            return Err(format!(
                "--shard-id {} out of range for --shard-count {}",
                self.shard_id, self.shard_count
            ));
        }
        if self.peers.len() != self.shard_count {
            return Err(format!(
                "--peers names {} addresses but --shard-count is {}",
                self.peers.len(),
                self.shard_count
            ));
        }
        Ok(())
    }
}

/// Parses a comma-separated `--peers` list.
pub fn parse_peers(raw: &str) -> Result<Vec<String>, String> {
    let peers: Vec<String> = raw
        .split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .map(str::to_owned)
        .collect();
    if peers.is_empty() {
        return Err("--peers wants a comma-separated list of host:port".into());
    }
    Ok(peers)
}

/// Router-mode configuration (`nvm-llc route`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterConfig {
    /// Listen address (`127.0.0.1:7870`; port `0` picks one).
    pub addr: String,
    /// Every shard's address, indexed by shard id.
    pub peers: Vec<String>,
    /// Worker threads handling client connections.
    pub workers: usize,
    /// Bounded accept queue; a full queue answers `503`.
    pub queue_capacity: usize,
    /// Tail-sampling slowness threshold in milliseconds: requests at or
    /// above it retain their span tree in `/tracez`. `None` tracks the
    /// live p99 of the handler-latency histogram; `Some(0)` captures
    /// every traced request.
    pub trace_slow_ms: Option<u64>,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:7870".to_owned(),
            peers: Vec::new(),
            workers: 8,
            queue_capacity: 128,
            trace_slow_ms: None,
        }
    }
}

/// One-line flag summary for `nvm-llc route --help`.
pub const ROUTER_USAGE: &str = "\
options:
  --addr HOST:PORT       listen address (default 127.0.0.1:7870)
  --peers A,B,C          shard addresses in shard-id order (required)
  --workers N            connection worker threads (default 8)
  --queue-capacity N     pending-connection bound; full => 503 (default 128)
  --trace-slow-ms N      tail-sample traces at/above N ms (0 = every
                         traced request; default: track the live p99)";

impl RouterConfig {
    /// Parses router flags (see [`ROUTER_USAGE`]).
    pub fn parse_args(args: &[String]) -> Result<RouterConfig, String> {
        let mut config = RouterConfig::default();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = || {
                it.next()
                    .map(String::as_str)
                    .ok_or_else(|| format!("{flag} needs a value"))
            };
            match flag.as_str() {
                "--addr" => config.addr = value()?.to_owned(),
                "--peers" => config.peers = parse_peers(value()?)?,
                "--workers" => {
                    config.workers = value()?
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| format!("{flag} wants an integer >= 1"))?;
                }
                "--queue-capacity" => {
                    config.queue_capacity = value()?
                        .parse()
                        .map_err(|_| format!("{flag} wants an integer >= 0"))?;
                }
                "--trace-slow-ms" => {
                    config.trace_slow_ms = Some(
                        value()?
                            .parse()
                            .map_err(|_| format!("{flag} wants an integer >= 0"))?,
                    );
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        if config.peers.is_empty() {
            return Err("router mode requires --peers".into());
        }
        Ok(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_llc_sim::persist::request_key;

    #[test]
    fn every_node_builds_the_same_ring() {
        let a = ShardMap::new(3);
        let b = ShardMap::new(3);
        for w in ["tonto", "x264", "milc", "leela", "ua", "lu"] {
            let key = request_key(
                "fixed_capacity",
                w,
                None,
                20_000,
                nvm_llc_sim::PolicyKind::Lru,
            );
            assert_eq!(a.owner(&key), b.owner(&key), "{w}");
        }
    }

    #[test]
    fn ownership_is_roughly_balanced() {
        let map = ShardMap::new(3);
        let mut counts = [0usize; 3];
        for i in 0..3000 {
            let key = Key::digest(format!("sample-{i}").as_bytes());
            counts[map.owner(&key)] += 1;
        }
        for (shard, &n) in counts.iter().enumerate() {
            assert!(
                (500..=1600).contains(&n),
                "shard {shard} owns {n} of 3000 keys: {counts:?}"
            );
        }
    }

    #[test]
    fn single_shard_owns_everything() {
        let map = ShardMap::new(1);
        for i in 0..64 {
            assert_eq!(map.owner(&Key::digest(&[i])), 0);
        }
    }

    #[test]
    fn growing_the_ring_moves_a_bounded_fraction_of_keys() {
        // The consistent-hashing property: going 3 -> 4 shards should
        // remap roughly 1/4 of the keyspace, not reshuffle all of it.
        let three = ShardMap::new(3);
        let four = ShardMap::new(4);
        let total = 4000;
        let moved = (0..total)
            .filter(|i| {
                let key = Key::digest(format!("sample-{i}").as_bytes());
                three.owner(&key) != four.owner(&key)
            })
            .count();
        assert!(
            moved < total / 2,
            "expected ~25% of keys to move, got {moved}/{total}"
        );
        assert!(moved > 0, "adding a shard must take over some keys");
    }

    #[test]
    fn shard_map_json_reports_full_coverage() {
        let json = ShardMap::new(3).render_json();
        assert!(json.starts_with("{\"shard_count\":3"), "{json}");
        assert!(json.contains("\"ownership\":["), "{json}");
    }

    #[test]
    fn cluster_config_validates() {
        let good = ClusterConfig {
            shard_id: 1,
            shard_count: 3,
            peers: vec!["a:1".into(), "b:2".into(), "c:3".into()],
        };
        assert!(good.validate().is_ok());
        let mut bad = good.clone();
        bad.shard_id = 3;
        assert!(bad.validate().is_err(), "id out of range");
        let mut bad = good.clone();
        bad.peers.pop();
        assert!(bad.validate().is_err(), "peer count mismatch");
    }

    #[test]
    fn router_args_parse_and_reject_junk() {
        let s = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let c = RouterConfig::parse_args(&s(&[
            "--addr",
            "0.0.0.0:0",
            "--peers",
            "a:1, b:2 ,c:3",
            "--workers",
            "2",
            "--trace-slow-ms",
            "250",
        ]))
        .unwrap();
        assert_eq!(c.peers, vec!["a:1", "b:2", "c:3"]);
        assert_eq!(c.workers, 2);
        assert_eq!(c.trace_slow_ms, Some(250));
        assert!(RouterConfig::parse_args(&s(&[])).is_err(), "peers required");
        assert!(RouterConfig::parse_args(&s(&["--peers", ""])).is_err());
        assert!(RouterConfig::parse_args(&s(&["--peers", "a:1", "--nope"])).is_err());
    }
}
