//! # nvm-llcd — the evaluation service
//!
//! A std-only HTTP/1.1 daemon over the workload × technology matrix:
//! `std::net::TcpListener`, a fixed worker pool, and no dependencies
//! beyond the workspace. Endpoints:
//!
//! | endpoint   | answer |
//! |------------|--------|
//! | `/eval?workload=W&tech=T` | one technology's normalized cell |
//! | `/row?workload=W`        | the full matrix row for `W` |
//! | `/healthz`               | liveness (`ok`) |
//! | `/statsz`                | queue, coalescing, store, tape-cache, and cluster counters |
//! | `/metricsz`              | the same registry in Prometheus text exposition |
//! | `/tracez`                | tail-sampled slow/error span trees (`?format=chrome` for chrome://tracing) |
//! | `/clusterz`              | every peer's `/metricsz` merged into one cluster-level Prometheus view |
//!
//! Optional parameters on `/eval` and `/row`: `models`
//! (`fixed_capacity`, default, or `fixed_area`) and `accesses`
//! (per-thread base access count).
//!
//! ## Transport
//!
//! Connections are **persistent**: the per-connection loop parses any
//! number of HTTP/1.1 requests out of one socket — pipelined into a
//! single TCP segment or split across reads — and writes exact
//! `Content-Length` responses back-to-back. `Connection:
//! keep-alive`/`close` is honored in both directions, bounded by a
//! max-requests-per-connection cap and an idle timeout
//! ([`ServeConfig::max_requests_per_conn`],
//! [`ServeConfig::idle_timeout_ms`]). A malformed request line answers
//! `400` *without* dropping the connection; only an unterminated
//! oversized head (`431`) forces a close, because there is no request
//! boundary left to recover at.
//!
//! ## Cluster serving
//!
//! With `--shard-id/--shard-count/--peers` the daemon joins a
//! consistent-hash cluster over the persist keyspace (see [`cluster`]):
//! it answers the requests it owns, and forwards the rest a single hop
//! to the owning shard over pooled keep-alive connections ([`pool`]),
//! evaluating locally whenever the owner is unreachable or the request
//! already hopped once — a valid key is never 404'd. `nvm-llc route`
//! runs the same server as a thin router that only forwards.
//!
//! ## Behavior under load
//!
//! * **Backpressure** — accepted connections wait in a bounded queue;
//!   when it is full the accept thread answers `503` immediately. A
//!   request that would start a new evaluation beyond the in-flight
//!   cap answers `429`.
//! * **Coalescing** — N identical concurrent requests cost one
//!   evaluation: the first becomes the *leader*, the rest block on its
//!   slot and receive byte-identical bodies.
//! * **Persistence** — with a store attached ([`ServeConfig::store_dir`])
//!   evaluations read through and write back the content-addressed
//!   result store, so a warm request — even after a daemon restart —
//!   skips simulation entirely.
//! * **Graceful shutdown** — SIGTERM/SIGINT (or [`Server::stop`]) stops
//!   accepting, drains queued and in-flight requests (keep-alive
//!   connections get `Connection: close` on their next response), then
//!   joins every worker.
//!
//! ## Distributed tracing
//!
//! Every `/eval`/`/row` request (and any request arriving with an
//! `x-nvmllc-trace` header) is traced while span timing is enabled: a
//! [`nvm_llc_obs::trace::Collector`] follows the request through the
//! handler, proxy hops carry the context upstream and bring the remote
//! hop's spans back in a response header, and the stitched tree is
//! retained in a bounded per-server ring only when the request errored
//! or ran slower than the tail-sampling threshold
//! ([`ServeConfig::trace_slow_ms`]; default: the live p99 of the
//! handler-latency histogram). `GET /tracez` exports the retained
//! trees as JSON, `GET /tracez?format=chrome` as a chrome://tracing
//! timeline with one process lane per node. With span timing disabled
//! ([`nvm_llc_obs::set_enabled`]) no trace headers are emitted and the
//! wire bytes are identical to an untraced build.
//!
//! Responses are rendered by [`json`] with shortest-round-trip floats,
//! so a served body is byte-identical to rendering the same
//! `Evaluator` result locally — the integration tests pin exactly that,
//! across shards and proxy hops too.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cluster;
pub mod http;
pub mod json;
pub mod pool;

/// Service metrics in the process-wide [`nvm_llc_obs`] registry.
pub mod metrics {
    use nvm_llc_obs::metrics::{
        counter, counter_with, gauge, histogram, histogram_with_bounds, Counter, Gauge, Histogram,
    };

    /// `nvmllc_serve_requests_total{class=...}` — one instance per
    /// status class (`2xx`, `4xx`, `5xx`).
    pub fn requests(class: &str) -> &'static Counter {
        counter_with(
            "nvmllc_serve_requests_total",
            "HTTP responses sent, by status class.",
            &[("class", class)],
        )
    }

    /// `nvmllc_serve_request_seconds`
    pub fn request_seconds() -> &'static Histogram {
        histogram(
            "nvmllc_serve_request_seconds",
            "Handler latency: request parsed to response written.",
        )
    }

    /// `nvmllc_serve_queue_wait_seconds`
    pub fn queue_wait_seconds() -> &'static Histogram {
        histogram(
            "nvmllc_serve_queue_wait_seconds",
            "Time an accepted connection waited in the bounded queue.",
        )
    }

    /// `nvmllc_serve_queue_depth`
    pub fn queue_depth() -> &'static Gauge {
        gauge(
            "nvmllc_serve_queue_depth",
            "Connections currently waiting in the accept queue.",
        )
    }

    /// `nvmllc_serve_inflight_evals`
    pub fn inflight_evals() -> &'static Gauge {
        gauge(
            "nvmllc_serve_inflight_evals",
            "Evaluations currently running under the in-flight cap.",
        )
    }

    /// `nvmllc_serve_rejected_total{reason=...}` — `queue_full` (503)
    /// or `busy` (429).
    pub fn rejected(reason: &str) -> &'static Counter {
        counter_with(
            "nvmllc_serve_rejected_total",
            "Requests shed by backpressure, by reason.",
            &[("reason", reason)],
        )
    }

    /// `nvmllc_serve_coalesce_waiters_total`
    pub fn coalesce_waiters() -> &'static Counter {
        counter(
            "nvmllc_serve_coalesce_waiters_total",
            "Requests that waited on another request's identical evaluation.",
        )
    }

    /// `nvmllc_serve_evaluations_total`
    pub fn evaluations() -> &'static Counter {
        counter(
            "nvmllc_serve_evaluations_total",
            "Evaluations actually run (coalesced waiters excluded).",
        )
    }

    /// `nvmllc_serve_uptime_seconds`
    pub fn uptime_seconds() -> &'static Gauge {
        gauge(
            "nvmllc_serve_uptime_seconds",
            "Seconds since the server started, rounded up (set at scrape time).",
        )
    }

    /// `nvmllc_serve_connections_total`
    pub fn connections() -> &'static Counter {
        counter(
            "nvmllc_serve_connections_total",
            "TCP connections handed to the worker pool.",
        )
    }

    /// `nvmllc_serve_requests_per_conn` — requests served on one
    /// connection before it closed (keep-alive efficiency).
    pub fn requests_per_conn() -> &'static Histogram {
        histogram_with_bounds(
            "nvmllc_serve_requests_per_conn",
            "Requests served per connection before close.",
            &[
                1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
            ],
        )
    }

    /// `nvmllc_serve_proxy_hops_total{result=...}` — cluster request
    /// placement: `local` (owned and answered here), `forwarded`
    /// (relayed one hop to the owner), `fallback` (should have
    /// forwarded, evaluated locally instead — owner unreachable or the
    /// request already hopped).
    pub fn proxy_hops(result: &str) -> &'static Counter {
        counter_with(
            "nvmllc_serve_proxy_hops_total",
            "Cluster request placement outcomes.",
            &[("result", result)],
        )
    }

    /// Pre-registers the whole workspace metric inventory — every serve
    /// family above plus the evaluator, tape-cache, trace-cache, and
    /// store families — so a scrape of a freshly started (or purely
    /// store-served) daemon shows zeros instead of missing series.
    pub fn register() {
        for class in ["2xx", "4xx", "5xx"] {
            requests(class);
        }
        request_seconds();
        queue_wait_seconds();
        queue_depth();
        inflight_evals();
        for reason in ["queue_full", "busy"] {
            rejected(reason);
        }
        coalesce_waiters();
        evaluations();
        uptime_seconds();
        connections();
        requests_per_conn();
        for result in ["local", "forwarded", "fallback"] {
            proxy_hops(result);
        }
        nvm_llc_obs::metrics::histogram(
            "nvmllc_serve_handle_seconds",
            "Wall time of the `serve_handle` span.",
        );
        nvm_llc_obs::metrics::histogram(
            "nvmllc_proxy_upstream_seconds",
            "Wall time of one proxy hop to the owning shard.",
        );
        nvm_llc_sim::runner::metrics::register();
        nvm_llc_sim::tape::cache::metrics::register();
        nvm_llc_trace::cache::metrics::register();
        nvm_llc_store::metrics::register();
    }
}

use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use nvm_llc_circuit::{reference, LlcModel};
use nvm_llc_sim::{persist, Evaluator, PolicyKind};
use nvm_llc_store::Store;
use nvm_llc_trace::workloads;

use cluster::{ClusterConfig, RouterConfig, ShardMap, HOP_HEADER};
use nvm_llc_obs::trace::{self, RetainedTrace, TailBuffer, TraceContext};
use pool::Pool;

/// Retained slow/error traces per server instance.
const TRACEZ_CAPACITY: usize = 64;

/// Service configuration; every field has a serving-friendly default.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`127.0.0.1:7878`; port `0` picks one).
    pub addr: String,
    /// Worker threads handling connections. A keep-alive connection
    /// occupies its worker until it closes, so size this at or above
    /// the expected concurrent-connection count.
    pub workers: usize,
    /// Bounded accept queue; a full queue answers `503`.
    pub queue_capacity: usize,
    /// Concurrent evaluations allowed; excess leaders answer `429`.
    pub max_evals: usize,
    /// Worker threads *inside* each evaluation (`Evaluator::threads`).
    pub eval_threads: usize,
    /// Default per-thread base access count when a request names none.
    pub base_accesses: usize,
    /// Persistent result-store directory (none: in-memory caches only).
    pub store_dir: Option<PathBuf>,
    /// Requests served on one connection before the server closes it
    /// (the response that hits the cap carries `Connection: close`).
    pub max_requests_per_conn: usize,
    /// How long an idle keep-alive connection is held open, ms.
    pub idle_timeout_ms: u64,
    /// Consistent-hash shard membership (none: standalone node).
    pub cluster: Option<ClusterConfig>,
    /// Tail-sampling slowness threshold in milliseconds: traced
    /// requests at or above it retain their span tree in `/tracez`.
    /// `None` tracks the live p99 of the handler-latency histogram;
    /// `Some(0)` captures every traced request.
    pub trace_slow_ms: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".to_owned(),
            workers: 4,
            queue_capacity: 64,
            max_evals: 4,
            eval_threads: 1,
            base_accesses: 20_000,
            store_dir: None,
            max_requests_per_conn: 1_000,
            idle_timeout_ms: 5_000,
            cluster: None,
            trace_slow_ms: None,
        }
    }
}

/// One-line flag summary shared by `nvm-llcd --help` and
/// `nvm-llc serve --help`.
pub const USAGE: &str = "\
options:
  --addr HOST:PORT       listen address (default 127.0.0.1:7878)
  --workers N            connection worker threads (default 4)
  --queue-capacity N     pending-connection bound; full => 503 (default 64)
  --max-evals N          concurrent evaluations; exhausted => 429 (default 4)
  --eval-threads N       worker threads inside one evaluation (default 1)
  --base-accesses N      default per-thread trace accesses (default 20000)
  --store-dir PATH       persistent content-addressed result store
  --max-requests-per-conn N  keep-alive requests per connection (default 1000)
  --idle-timeout-ms N    idle keep-alive connection timeout (default 5000)
  --shard-id N           this node's shard id (cluster mode)
  --shard-count N        total shards on the consistent-hash ring
  --peers A,B,C          every shard's address, in shard-id order
  --trace-slow-ms N      tail-sample traces at/above N ms (0 = every
                         traced request; default: track the live p99)";

impl ServeConfig {
    /// Parses daemon flags (see [`USAGE`]). Unknown flags, missing
    /// values, out-of-range numbers, and inconsistent cluster triples
    /// are errors.
    pub fn parse_args(args: &[String]) -> Result<ServeConfig, String> {
        fn next<'a>(
            it: &mut impl Iterator<Item = &'a String>,
            flag: &str,
        ) -> Result<&'a str, String> {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} needs a value"))
        }
        fn positive(raw: &str, flag: &str) -> Result<usize, String> {
            raw.parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| format!("{flag} wants an integer >= 1, got {raw:?}"))
        }
        let mut config = ServeConfig::default();
        let mut shard_id: Option<usize> = None;
        let mut shard_count: Option<usize> = None;
        let mut peers: Option<Vec<String>> = None;
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--addr" => config.addr = next(&mut it, flag)?.to_owned(),
                "--workers" => config.workers = positive(next(&mut it, flag)?, flag)?,
                "--queue-capacity" => {
                    let raw = next(&mut it, flag)?;
                    config.queue_capacity = raw
                        .parse()
                        .map_err(|_| format!("{flag} wants an integer >= 0, got {raw:?}"))?;
                }
                "--max-evals" => {
                    let raw = next(&mut it, flag)?;
                    config.max_evals = raw
                        .parse()
                        .map_err(|_| format!("{flag} wants an integer >= 0, got {raw:?}"))?;
                }
                "--eval-threads" => config.eval_threads = positive(next(&mut it, flag)?, flag)?,
                "--base-accesses" => config.base_accesses = positive(next(&mut it, flag)?, flag)?,
                "--store-dir" => config.store_dir = Some(PathBuf::from(next(&mut it, flag)?)),
                "--max-requests-per-conn" => {
                    config.max_requests_per_conn = positive(next(&mut it, flag)?, flag)?;
                }
                "--idle-timeout-ms" => {
                    config.idle_timeout_ms = positive(next(&mut it, flag)?, flag)? as u64;
                }
                "--shard-id" => {
                    let raw = next(&mut it, flag)?;
                    shard_id = Some(
                        raw.parse()
                            .map_err(|_| format!("{flag} wants an integer >= 0, got {raw:?}"))?,
                    );
                }
                "--shard-count" => shard_count = Some(positive(next(&mut it, flag)?, flag)?),
                "--peers" => peers = Some(cluster::parse_peers(next(&mut it, flag)?)?),
                "--trace-slow-ms" => {
                    let raw = next(&mut it, flag)?;
                    config.trace_slow_ms = Some(
                        raw.parse()
                            .map_err(|_| format!("{flag} wants an integer >= 0, got {raw:?}"))?,
                    );
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        config.cluster = match (shard_id, shard_count, peers) {
            (None, None, None) => None,
            (Some(shard_id), Some(shard_count), Some(peers)) => {
                let cluster = ClusterConfig {
                    shard_id,
                    shard_count,
                    peers,
                };
                cluster.validate()?;
                Some(cluster)
            }
            _ => {
                return Err(
                    "cluster mode needs all of --shard-id, --shard-count, and --peers".to_owned(),
                )
            }
        };
        Ok(config)
    }
}

/// Service-level counters, all monotone.
#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    requests: AtomicU64,
    coalesce_hits: AtomicU64,
    rejected_queue_full: AtomicU64,
    rejected_busy: AtomicU64,
    evaluations: AtomicU64,
    /// Responses by status class: [2xx, 4xx, 5xx].
    by_class: [AtomicU64; 3],
}

impl Counters {
    /// Counts one response toward its status class, here and in the
    /// process-wide registry.
    fn count_status(&self, status: u16) {
        let (idx, class) = match status / 100 {
            2 => (0, "2xx"),
            4 => (1, "4xx"),
            _ => (2, "5xx"),
        };
        self.by_class[idx].fetch_add(1, Ordering::Relaxed);
        metrics::requests(class).inc();
    }
}

/// How one evaluation ended: a shared response body, or a status code
/// plus error message.
type EvalOutcome = Result<Arc<String>, (u16, String)>;

/// The coalescing rendezvous for one in-flight evaluation key: the
/// leader publishes exactly once, waiters block until it does.
struct EvalSlot {
    state: Mutex<Option<EvalOutcome>>,
    ready: Condvar,
}

impl EvalSlot {
    fn new() -> EvalSlot {
        EvalSlot {
            state: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn publish(&self, outcome: EvalOutcome) {
        *self.state.lock().expect("slot lock") = Some(outcome);
        self.ready.notify_all();
    }

    fn wait(&self) -> EvalOutcome {
        let mut state = self.state.lock().expect("slot lock");
        loop {
            if let Some(outcome) = state.as_ref() {
                return outcome.clone();
            }
            state = self.ready.wait(state).expect("slot lock");
        }
    }
}

/// Everything cluster-aware dispatch needs: the ring, this node's
/// identity (routers have none), one upstream pool per peer, and
/// per-peer forward counters.
struct ClusterState {
    map: ShardMap,
    /// `Some(shard_id)` on a shard; `None` on a router.
    self_id: Option<usize>,
    /// One keep-alive pool per shard, indexed by shard id. A shard's
    /// own slot exists but is never dialed.
    peers: Vec<Pool>,
    /// Requests forwarded to each peer.
    forwards: Vec<AtomicU64>,
    /// Requests answered locally although another shard owned them.
    fallbacks: AtomicU64,
}

impl ClusterState {
    fn new(self_id: Option<usize>, peers: &[String]) -> ClusterState {
        ClusterState {
            map: ShardMap::new(peers.len()),
            self_id,
            peers: peers.iter().map(Pool::new).collect(),
            forwards: peers.iter().map(|_| AtomicU64::new(0)).collect(),
            fallbacks: AtomicU64::new(0),
        }
    }

    fn render_json(&self) -> String {
        let role = match self.self_id {
            Some(_) => "shard",
            None => "router",
        };
        let forwards: Vec<String> = self
            .forwards
            .iter()
            .map(|f| f.load(Ordering::Relaxed).to_string())
            .collect();
        let peers: Vec<String> = self
            .peers
            .iter()
            .map(|p| format!("\"{}\"", p.addr()))
            .collect();
        format!(
            "{{\"role\":\"{role}\",\"shard_id\":{},\"shard_count\":{},\
             \"peers\":[{}],\"forwards\":[{}],\"fallbacks\":{},\"map\":{}}}",
            self.self_id
                .map_or_else(|| "null".to_owned(), |id| id.to_string()),
            self.map.shard_count(),
            peers.join(","),
            forwards.join(","),
            self.fallbacks.load(Ordering::Relaxed),
            self.map.render_json(),
        )
    }
}

/// What this server instance does with `/eval` and `/row`.
enum Role {
    /// Standalone node: evaluate everything locally.
    Node,
    /// Cluster shard: evaluate owned keys, forward the rest one hop.
    Shard(ClusterState),
    /// Thin router: forward everything, evaluate nothing.
    Router(ClusterState),
}

struct Shared {
    config: ServeConfig,
    role: Role,
    queue: Mutex<VecDeque<(TcpStream, Instant)>>,
    queue_cv: Condvar,
    stop: AtomicBool,
    counters: Counters,
    coalesce: Mutex<HashMap<String, Arc<EvalSlot>>>,
    inflight_evals: AtomicUsize,
    store: Option<Arc<Store>>,
    started: Instant,
    next_request_id: AtomicU64,
    /// Tail-sampled slow/error traces, per server instance (tests run
    /// several servers in one process; a global ring would mix them).
    tracez: TailBuffer,
    /// This node's lane label in stitched traces (`shard-N`, `router`,
    /// or `node`).
    node_label: String,
}

/// A running service instance.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

impl Server {
    /// Binds, opens the store (when configured), and spawns the accept
    /// thread plus the worker pool. Returns once the service accepts.
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let role = match &config.cluster {
            Some(c) => Role::Shard(ClusterState::new(Some(c.shard_id), &c.peers)),
            None => Role::Node,
        };
        Server::start_with_role(config, role)
    }

    /// Starts a thin router: same transport, queue, and worker pool,
    /// but `/eval` and `/row` only forward to the owning shard.
    pub fn start_router(config: RouterConfig) -> std::io::Result<Server> {
        if config.peers.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "router mode requires at least one peer",
            ));
        }
        let role = Role::Router(ClusterState::new(None, &config.peers));
        let serve = ServeConfig {
            addr: config.addr,
            workers: config.workers,
            queue_capacity: config.queue_capacity,
            trace_slow_ms: config.trace_slow_ms,
            // Routers never evaluate; the remaining knobs are inert.
            ..ServeConfig::default()
        };
        Server::start_with_role(serve, role)
    }

    fn start_with_role(config: ServeConfig, role: Role) -> std::io::Result<Server> {
        metrics::register();
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let store = match &config.store_dir {
            Some(dir) => Some(Arc::new(Store::open(dir)?)),
            None => None,
        };
        let workers = config.workers.max(1);
        let node_label = match &role {
            Role::Shard(state) => format!("shard-{}", state.self_id.unwrap_or(0)),
            Role::Router(_) => "router".to_owned(),
            Role::Node => "node".to_owned(),
        };
        let shared = Arc::new(Shared {
            config,
            role,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            stop: AtomicBool::new(false),
            counters: Counters::default(),
            coalesce: Mutex::new(HashMap::new()),
            inflight_evals: AtomicUsize::new(0),
            store,
            started: Instant::now(),
            next_request_id: AtomicU64::new(1),
            tracez: TailBuffer::new(TRACEZ_CAPACITY),
            node_label,
        });
        let mut threads = Vec::with_capacity(workers + 1);
        {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("nvm-llcd-accept".into())
                    .spawn(move || accept_loop(&shared, listener))?,
            );
        }
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("nvm-llcd-worker-{i}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }
        Ok(Server {
            shared,
            addr,
            threads,
        })
    }

    /// The bound address (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown: stop accepting, drain queued and in-flight
    /// work. Idempotent; [`Server::join`] completes it.
    pub fn stop(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
    }

    /// Whether shutdown has been requested.
    pub fn stopping(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }

    /// Waits for every thread to finish draining and exit.
    pub fn join(mut self) {
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }

    /// [`Server::stop`] then [`Server::join`].
    pub fn shutdown(self) {
        self.stop();
        self.join();
    }

    /// One-line lifetime summary (for the daemon's shutdown log).
    pub fn summary(&self) -> String {
        let c = &self.shared.counters;
        format!(
            "{} connections, {} requests, {} evaluations, {} coalesced, \
             {} queue-rejected, {} busy-rejected",
            c.connections.load(Ordering::Relaxed),
            c.requests.load(Ordering::Relaxed),
            c.evaluations.load(Ordering::Relaxed),
            c.coalesce_hits.load(Ordering::Relaxed),
            c.rejected_queue_full.load(Ordering::Relaxed),
            c.rejected_busy.load(Ordering::Relaxed),
        )
    }
}

fn accept_loop(shared: &Shared, listener: TcpListener) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                // The listener is nonblocking (so shutdown can interrupt
                // the accept loop); handled streams must not be.
                let _ = stream.set_nonblocking(false);
                let mut queue = shared.queue.lock().expect("queue lock");
                if queue.len() >= shared.config.queue_capacity {
                    drop(queue);
                    shared
                        .counters
                        .rejected_queue_full
                        .fetch_add(1, Ordering::Relaxed);
                    metrics::rejected("queue_full").inc();
                    shared.counters.count_status(503);
                    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
                    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
                    // Drain the request head before answering: closing
                    // with unread bytes resets the connection and can
                    // discard the 503 before the client sees it.
                    let _ = http::read_request(&mut stream);
                    let _ = http::respond(
                        &mut stream,
                        503,
                        "application/json",
                        "{\"error\":\"request queue full\"}",
                    );
                } else {
                    queue.push_back((stream, Instant::now()));
                    metrics::queue_depth().set(queue.len() as u64);
                    drop(queue);
                    shared.queue_cv.notify_one();
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    // Wake any idle worker so it can observe the stop flag.
    shared.queue_cv.notify_all();
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                // Pop before honoring stop: shutdown drains the queue.
                if let Some((stream, enqueued)) = queue.pop_front() {
                    metrics::queue_depth().set(queue.len() as u64);
                    break Some((stream, enqueued));
                }
                if shared.stop.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) = shared
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(100))
                    .expect("queue lock");
                queue = guard;
            }
        };
        match stream {
            Some((stream, enqueued)) => {
                let queue_wait = enqueued.elapsed();
                metrics::queue_wait_seconds().record(queue_wait.as_secs_f64());
                handle_connection(shared, stream, queue_wait);
            }
            None => break,
        }
    }
}

fn error_json(message: &str) -> String {
    format!("{{\"error\":\"{message}\"}}")
}

/// How often a blocked connection read wakes to re-check the stop flag
/// and the idle deadline.
const READ_POLL: Duration = Duration::from_millis(200);

/// Serves one connection to completion: parse every request the socket
/// delivers (pipelined or split across reads), answer each with an
/// exact-length response, write batches back-to-back, and hold the
/// connection open until the peer closes, an idle timeout passes, the
/// per-connection request cap is reached, or the server drains.
fn handle_connection(shared: &Shared, mut stream: TcpStream, queue_wait: Duration) {
    shared.counters.connections.fetch_add(1, Ordering::Relaxed);
    metrics::connections().inc();
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_nodelay(true);

    let idle_timeout = Duration::from_millis(shared.config.idle_timeout_ms.max(1));
    let max_requests = shared.config.max_requests_per_conn.max(1) as u64;
    let mut buf = http::ConnBuffer::new();
    let mut out: Vec<u8> = Vec::new();
    let mut served: u64 = 0;
    let mut last_activity = Instant::now();
    // The accept-queue wait belongs to the connection's first request;
    // later requests on the same connection never queued.
    let mut queue_wait = Some(queue_wait);

    'conn: loop {
        // Drain every complete request already buffered, answering each
        // into the write buffer so pipelined responses go out together.
        loop {
            let parse_started = Instant::now();
            match buf.next_request() {
                Ok(Some(request)) => {
                    let phases = PrePhases {
                        queue_wait: queue_wait.take(),
                        parse: parse_started.elapsed(),
                    };
                    served += 1;
                    let draining = shared.stop.load(Ordering::SeqCst);
                    let close = request.close || served >= max_requests || draining;
                    serve_request(shared, &request, &mut out, !close, phases);
                    if close {
                        let _ = flush(&mut stream, &mut out);
                        break 'conn;
                    }
                }
                Ok(None) => break,
                Err(http::ParseError::Malformed(_)) => {
                    // The bad head was consumed; answer 400 and keep
                    // parsing — pipelined successors are still intact.
                    served += 1;
                    shared.counters.count_status(400);
                    let _ = http::respond_conn(
                        &mut out,
                        400,
                        "application/json",
                        &error_json("malformed request"),
                        served < max_requests,
                    );
                    if served >= max_requests {
                        let _ = flush(&mut stream, &mut out);
                        break 'conn;
                    }
                }
                Err(http::ParseError::TooLarge) => {
                    // No head boundary to resynchronize at: close. The
                    // 431 is still a served response and must land in
                    // requests_per_conn like every other exit path.
                    served += 1;
                    shared.counters.count_status(431);
                    let _ = http::respond_conn(
                        &mut out,
                        431,
                        "application/json",
                        &error_json("request header section too large"),
                        false,
                    );
                    let _ = flush(&mut stream, &mut out);
                    // Drain whatever the client over-sent before closing:
                    // a close with unread bytes queued resets the
                    // connection and can discard the 431 in flight.
                    drain_excess(&mut stream);
                    break 'conn;
                }
            }
        }
        if flush(&mut stream, &mut out).is_err() {
            break;
        }
        // Need more bytes. The read timeout is short so the idle
        // deadline and the stop flag are both honored promptly.
        match buf.fill(&mut stream) {
            Ok(0) => break, // peer closed
            Ok(_) => last_activity = Instant::now(),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.stop.load(Ordering::SeqCst) && buf.buffered() == 0 {
                    break;
                }
                if last_activity.elapsed() >= idle_timeout {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    metrics::requests_per_conn().record(served as f64);
}

/// Best-effort bounded read-to-idle, so an error close does not reset
/// the connection under the response. One `READ_POLL` of quiet (or
/// 256 KiB drained) is enough — this only smooths the error path.
fn drain_excess(stream: &mut TcpStream) {
    use std::io::Read as _;
    let mut scratch = [0u8; 4096];
    let mut drained = 0usize;
    while drained < 256 * 1024 {
        match stream.read(&mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained += n,
        }
    }
}

fn flush(stream: &mut TcpStream, out: &mut Vec<u8>) -> std::io::Result<()> {
    use std::io::Write as _;
    if out.is_empty() {
        return Ok(());
    }
    let result = stream.write_all(out);
    out.clear();
    result
}

/// Pre-handler phase timings measured by the connection loop: the
/// accept-queue wait (first request of a connection only) and how long
/// this request's head took to parse out of the read buffer.
struct PrePhases {
    queue_wait: Option<Duration>,
    parse: Duration,
}

/// Routes one parsed request and writes its response (headers + body)
/// into the connection's write buffer.
fn serve_request(
    shared: &Shared,
    request: &http::Request,
    out: &mut Vec<u8>,
    keep_alive: bool,
    phases: PrePhases,
) {
    let request_id = shared.next_request_id.fetch_add(1, Ordering::Relaxed);
    shared.counters.requests.fetch_add(1, Ordering::Relaxed);

    // Trace evaluation traffic and anything that arrived with a trace
    // context, but only while span timing is on — disabled tracing must
    // leave the wire bytes identical to an untraced build.
    let inbound = request
        .header(trace::TRACE_HEADER)
        .and_then(TraceContext::parse);
    let traced = nvm_llc_obs::enabled()
        && (inbound.is_some() || matches!(request.path.as_str(), "/eval" | "/row"));
    let collector = traced.then(|| trace::Collector::begin(inbound));
    let _attached = collector
        .as_ref()
        .map(|c| trace::attach(c, c.root_parent()));
    if let Some(collector) = &collector {
        // The queue and parse phases ended before the collector
        // existed; backdate them so the timeline runs accept-to-write.
        let parse_micros = phases.parse.as_secs_f64() * 1e6;
        if let Some(wait) = phases.queue_wait {
            let wait_micros = wait.as_secs_f64() * 1e6;
            collector.add_synthetic(
                "queue",
                collector.root_parent(),
                -(wait_micros + parse_micros),
                wait_micros,
            );
        }
        collector.add_synthetic(
            "parse",
            collector.root_parent(),
            -parse_micros,
            parse_micros,
        );
    }

    let start = Instant::now();
    let (status, content_type, body) = {
        let _span = nvm_llc_obs::span!("serve_handle");
        route(shared, request)
    };
    let elapsed = start.elapsed();
    metrics::request_seconds().record(elapsed.as_secs_f64());
    shared.counters.count_status(status);
    nvm_llc_obs::debug!(
        "serve", "request";
        "request_id" => request_id,
        "path" => request.path.as_str(),
        "status" => u64::from(status),
        "micros" => elapsed.as_micros() as u64,
    );

    let mut extra: Vec<(String, String)> = Vec::new();
    if let Some(collector) = collector {
        if collector.hop() > 0 {
            // Forwarded request: hand our spans back to the caller,
            // which stitches them under its own proxy span.
            extra.push((
                trace::SPANS_HEADER.to_owned(),
                collector.encode_spans(&shared.node_label),
            ));
        } else {
            finish_trace(shared, request, &collector, status, elapsed);
        }
    }
    let _ = http::respond_conn_ext(out, status, content_type, &body, keep_alive, &extra);
}

/// Hop-zero trace epilogue: tail-sampling. Retain the sealed span tree
/// in `/tracez` — and log a structured slow-request line with per-phase
/// attribution — only when the request errored or ran at/above the
/// slowness threshold.
fn finish_trace(
    shared: &Shared,
    request: &http::Request,
    collector: &trace::Collector,
    status: u16,
    elapsed: Duration,
) {
    let total_micros = elapsed.as_secs_f64() * 1e6;
    let reason = if status >= 400 {
        "error"
    } else if total_micros >= slow_threshold_micros(shared) {
        "slow"
    } else {
        return;
    };
    let spans = collector.seal(&shared.node_label);
    let phase = phase_micros(&spans);
    nvm_llc_obs::info!(
        "serve", "slow_request";
        "trace_id" => format!("{:032x}", collector.trace_id()),
        "target" => request.raw_target.as_str(),
        "status" => u64::from(status),
        "reason" => reason,
        "total_us" => total_micros as u64,
        "queue_us" => phase.queue as u64,
        "parse_us" => phase.parse as u64,
        "tape_fetch_us" => phase.tape_fetch as u64,
        "functional_us" => phase.functional as u64,
        "replay_us" => phase.replay as u64,
        "store_us" => phase.store as u64,
        "proxy_us" => phase.proxy as u64,
    );
    shared.tracez.push(RetainedTrace {
        trace_id: collector.trace_id(),
        target: request.raw_target.clone(),
        status,
        reason,
        total_micros,
        node: shared.node_label.clone(),
        spans,
    });
}

/// The tail-sampling slowness threshold in microseconds: the configured
/// `--trace-slow-ms`, or the live p99 of the handler-latency histogram.
fn slow_threshold_micros(shared: &Shared) -> f64 {
    match shared.config.trace_slow_ms {
        Some(ms) => ms as f64 * 1000.0,
        None => metrics::request_seconds().quantile(0.99) * 1e6,
    }
}

/// Wall time attributed to each request phase, in microseconds.
#[derive(Debug, Default)]
struct PhaseMicros {
    queue: f64,
    parse: f64,
    tape_fetch: f64,
    functional: f64,
    replay: f64,
    store: f64,
    proxy: f64,
}

/// Sums span durations into request phases by span name. Only
/// same-level spans contribute to one phase (`tape_replay_chunk` nests
/// inside `tape_replay_batch` and would double-count).
fn phase_micros(spans: &[nvm_llc_obs::trace::SpanRecord]) -> PhaseMicros {
    let mut phase = PhaseMicros::default();
    for span in spans {
        let bucket = match span.name.as_str() {
            "queue" => &mut phase.queue,
            "parse" => &mut phase.parse,
            "tape_fetch" => &mut phase.tape_fetch,
            "tape_record" | "trace_generate" | "tape_decode" => &mut phase.functional,
            "tape_replay" | "tape_replay_batch" => &mut phase.replay,
            "proxy_upstream" => &mut phase.proxy,
            name if name.starts_with("store_") => &mut phase.store,
            _ => continue,
        };
        *bucket += span.dur_micros;
    }
    phase
}

fn route(shared: &Shared, request: &http::Request) -> (u16, &'static str, String) {
    if request.method != "GET" {
        return (405, "application/json", error_json("GET only"));
    }
    match request.path.as_str() {
        "/healthz" => (200, "text/plain", "ok\n".to_owned()),
        "/statsz" => (200, "application/json", render_statsz(shared)),
        "/metricsz" => (200, "text/plain; version=0.0.4", render_metricsz(shared)),
        "/tracez" => {
            if request.param("format") == Some("chrome") {
                (200, "application/json", shared.tracez.render_chrome())
            } else {
                // Prefix the ring's JSON with this server's lane label.
                let json = shared.tracez.render_json();
                let body = format!("{{\"node\":\"{}\",{}", shared.node_label, &json[1..]);
                (200, "application/json", body)
            }
        }
        "/clusterz" => (200, "text/plain; version=0.0.4", render_clusterz(shared)),
        "/eval" | "/row" => {
            let (status, body) = eval_or_forward(shared, request);
            (status, "application/json", body)
        }
        _ => (404, "application/json", error_json("unknown path")),
    }
}

/// The model sets a request may evaluate against.
fn models_for(set: &str) -> Option<Vec<LlcModel>> {
    match set {
        "fixed_capacity" => Some(reference::fixed_capacity()),
        "fixed_area" => Some(reference::fixed_area()),
        _ => None,
    }
}

/// A validated evaluation request: everything that identifies its
/// output, and therefore its coalescing key and its shard owner.
#[derive(Debug, Clone, PartialEq, Eq)]
struct EvalRequest {
    /// `None`: full row; `Some(tech)`: one cell.
    tech: Option<String>,
    models: String,
    workload: String,
    accesses: usize,
    /// LLC replacement policy the evaluation runs under (`lru` when the
    /// request does not say).
    policy: PolicyKind,
}

impl EvalRequest {
    fn key(&self) -> String {
        format!(
            "{}|{}|{}|{}|{}",
            self.tech.as_deref().unwrap_or("<row>"),
            self.models,
            self.workload,
            self.accesses,
            self.policy,
        )
    }

    /// The request's point in the persist keyspace — what the cluster
    /// shards on.
    fn route_key(&self) -> nvm_llc_store::Key {
        persist::request_key(
            &self.models,
            &self.workload,
            self.tech.as_deref(),
            self.accesses,
            self.policy,
        )
    }
}

/// Bounds on the per-request `accesses` override: enough to be
/// meaningful, small enough that one request cannot wedge a worker.
const ACCESSES_RANGE: std::ops::RangeInclusive<usize> = 100..=5_000_000;

fn parse_eval_request(shared: &Shared, request: &http::Request) -> Result<EvalRequest, String> {
    let models = request.param("models").unwrap_or("fixed_capacity");
    let model_set = models_for(models).ok_or_else(|| {
        format!("unknown models set {models:?} (want fixed_capacity or fixed_area)")
    })?;
    let workload = request
        .param("workload")
        .ok_or("missing required parameter: workload")?;
    if workloads::by_name(workload).is_none() {
        return Err(format!("unknown workload {workload:?}"));
    }
    let accesses = match request.param("accesses") {
        None => shared.config.base_accesses,
        Some(raw) => raw
            .parse::<usize>()
            .ok()
            .filter(|n| ACCESSES_RANGE.contains(n))
            .ok_or_else(|| {
                format!(
                    "accesses wants an integer in {}..={}, got {raw:?}",
                    ACCESSES_RANGE.start(),
                    ACCESSES_RANGE.end()
                )
            })?,
    };
    let policy = match request.param("policy") {
        None => PolicyKind::Lru,
        Some(raw) => PolicyKind::parse(raw).ok_or_else(|| {
            format!(
                "unknown policy {raw:?} (want one of lru, random, srrip, \
                 drrip, ship, endurance)"
            )
        })?,
    };
    let tech = if request.path == "/eval" {
        let tech = request
            .param("tech")
            .ok_or("missing required parameter: tech")?;
        if reference::by_name(&model_set, tech).is_none() {
            return Err(format!(
                "unknown technology {tech:?} in models set {models:?}"
            ));
        }
        Some(tech.to_owned())
    } else {
        None
    };
    Ok(EvalRequest {
        tech,
        models: models.to_owned(),
        workload: workload.to_owned(),
        accesses,
        policy,
    })
}

/// `/eval` and `/row`: validate, then either evaluate here or forward
/// to the owning shard, depending on this server's role.
fn eval_or_forward(shared: &Shared, request: &http::Request) -> (u16, String) {
    let parsed = match parse_eval_request(shared, request) {
        Ok(parsed) => parsed,
        Err(message) => return (400, error_json(&message)),
    };
    match &shared.role {
        Role::Node => eval_parsed(shared, &parsed),
        Role::Shard(state) => shard_dispatch(shared, state, request, &parsed),
        Role::Router(state) => router_forward(state, request, &parsed),
    }
}

/// Shard placement: evaluate owned (or already-hopped) requests
/// locally, forward the rest one hop to the owner, and fall back to a
/// local evaluation whenever the owner cannot answer — the
/// location-independent persist keys make the local answer
/// byte-identical, so availability never costs correctness.
fn shard_dispatch(
    shared: &Shared,
    state: &ClusterState,
    request: &http::Request,
    parsed: &EvalRequest,
) -> (u16, String) {
    let owner = state.map.owner(&parsed.route_key());
    let hopped = request.header(HOP_HEADER).is_some();
    if Some(owner) == state.self_id {
        metrics::proxy_hops("local").inc();
        return eval_parsed(shared, parsed);
    }
    if hopped {
        // Single-hop invariant: a forwarded request never forwards
        // again, whatever this node thinks the map says.
        metrics::proxy_hops("fallback").inc();
        state.fallbacks.fetch_add(1, Ordering::Relaxed);
        return eval_parsed(shared, parsed);
    }
    match proxy_request(&state.peers[owner], request) {
        Ok((status, body)) if status < 500 => {
            metrics::proxy_hops("forwarded").inc();
            state.forwards[owner].fetch_add(1, Ordering::Relaxed);
            (status, body)
        }
        // Owner down or failing: answer it ourselves.
        Ok(_) | Err(_) => {
            metrics::proxy_hops("fallback").inc();
            state.fallbacks.fetch_add(1, Ordering::Relaxed);
            eval_parsed(shared, parsed)
        }
    }
}

/// One hop-marked proxy round trip with trace propagation: the current
/// trace context (if any) rides upstream in [`trace::TRACE_HEADER`],
/// and the upstream's span records come back in [`trace::SPANS_HEADER`]
/// and are stitched into the local collector under the proxy span.
fn proxy_request(peer: &Pool, request: &http::Request) -> std::io::Result<(u16, String)> {
    let context = trace::outbound_context().map(|c| c.encode());
    let mut headers: Vec<(&str, &str)> = vec![(HOP_HEADER, "1")];
    if let Some(context) = &context {
        headers.push((trace::TRACE_HEADER, context));
    }
    // Remote span offsets are relative to the upstream's request start,
    // which is (to within network latency) now.
    let base_micros = trace::current().map(|c| c.elapsed_micros());
    let response = {
        let _span = nvm_llc_obs::span!("proxy_upstream");
        peer.request(&request.raw_target, &headers)?
    };
    if let (Some(collector), Some(base)) = (trace::current(), base_micros) {
        if let Some(spans) = response.header(trace::SPANS_HEADER) {
            collector.ingest_remote(spans, base);
        }
    }
    Ok((response.status, response.body))
}

/// Router placement: forward to the owner; if the owner is unreachable,
/// walk the remaining shards in ring order — each carries the hop
/// marker, so whichever shard answers evaluates locally and the
/// response stays byte-identical.
fn router_forward(
    state: &ClusterState,
    request: &http::Request,
    parsed: &EvalRequest,
) -> (u16, String) {
    let owner = state.map.owner(&parsed.route_key());
    let n = state.peers.len();
    for attempt in 0..n {
        let peer = (owner + attempt) % n;
        match proxy_request(&state.peers[peer], request) {
            Ok((status, body)) if status < 500 => {
                metrics::proxy_hops(if attempt == 0 {
                    "forwarded"
                } else {
                    "fallback"
                })
                .inc();
                if attempt > 0 {
                    state.fallbacks.fetch_add(1, Ordering::Relaxed);
                }
                state.forwards[peer].fetch_add(1, Ordering::Relaxed);
                return (status, body);
            }
            Ok(_) | Err(_) => continue,
        }
    }
    (502, error_json("no shard reachable"))
}

/// Evaluates one validated request behind the coalescing map.
fn eval_parsed(shared: &Shared, parsed: &EvalRequest) -> (u16, String) {
    let key = parsed.key();
    let (slot, leader) = {
        let mut map = shared.coalesce.lock().expect("coalesce lock");
        match map.get(&key) {
            Some(slot) => (Arc::clone(slot), false),
            None => {
                let slot = Arc::new(EvalSlot::new());
                map.insert(key.clone(), Arc::clone(&slot));
                (slot, true)
            }
        }
    };
    if !leader {
        shared
            .counters
            .coalesce_hits
            .fetch_add(1, Ordering::Relaxed);
        metrics::coalesce_waiters().inc();
        return match slot.wait() {
            Ok(body) => (200, (*body).clone()),
            Err((status, body)) => (status, body),
        };
    }
    let outcome = evaluate(shared, parsed);
    slot.publish(match &outcome {
        Ok(body) => Ok(Arc::new(body.clone())),
        Err(err) => Err(err.clone()),
    });
    shared.coalesce.lock().expect("coalesce lock").remove(&key);
    match outcome {
        Ok(body) => (200, body),
        Err((status, body)) => (status, body),
    }
}

/// Runs one evaluation under the in-flight cap, rendering its JSON.
fn evaluate(shared: &Shared, request: &EvalRequest) -> Result<String, (u16, String)> {
    let cap = shared.config.max_evals;
    let admitted = shared
        .inflight_evals
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
            (n < cap).then_some(n + 1)
        })
        .is_ok();
    if !admitted {
        shared
            .counters
            .rejected_busy
            .fetch_add(1, Ordering::Relaxed);
        metrics::rejected("busy").inc();
        return Err((
            429,
            error_json("evaluation capacity exhausted, retry later"),
        ));
    }
    metrics::inflight_evals().set(shared.inflight_evals.load(Ordering::SeqCst) as u64);
    // RAII: the slot is released (and the gauge resynced) even if the
    // evaluation panics, so the cap can never leak closed.
    struct InflightGuard<'a>(&'a Shared);
    impl Drop for InflightGuard<'_> {
        fn drop(&mut self) {
            self.0.inflight_evals.fetch_sub(1, Ordering::SeqCst);
            metrics::inflight_evals().set(self.0.inflight_evals.load(Ordering::SeqCst) as u64);
        }
    }
    let _guard = InflightGuard(shared);
    let result = run_evaluation(shared, request);
    shared.counters.evaluations.fetch_add(1, Ordering::Relaxed);
    metrics::evaluations().inc();
    result
}

fn run_evaluation(shared: &Shared, request: &EvalRequest) -> Result<String, (u16, String)> {
    let internal = |what: &str| (500, error_json(what));
    let models = models_for(&request.models).ok_or_else(|| internal("models set vanished"))?;
    let baseline =
        reference::by_name(&models, "SRAM").ok_or_else(|| internal("no SRAM baseline"))?;
    let nvms: Vec<LlcModel> = match &request.tech {
        Some(tech) => {
            vec![reference::by_name(&models, tech).ok_or_else(|| internal("tech vanished"))?]
        }
        None => models.into_iter().filter(|m| m.name != "SRAM").collect(),
    };
    let workload =
        workloads::by_name(&request.workload).ok_or_else(|| internal("workload vanished"))?;
    let mut evaluator = Evaluator::new(baseline, nvms)
        .base_accesses(request.accesses)
        .threads(shared.config.eval_threads.max(1))
        .policy(request.policy);
    if let Some(store) = &shared.store {
        evaluator = evaluator.store(Arc::clone(store));
    }
    let row = evaluator.run_workload(&workload);
    Ok(match &request.tech {
        Some(_) => {
            let entry = row.entries.first().ok_or_else(|| internal("empty row"))?;
            json::render_cell(&row.workload, entry)
        }
        None => json::render_row(&row),
    })
}

/// Seconds since `started`, at millisecond resolution, rounded up — a
/// daemon that has served even one request never reports an uptime of
/// zero.
fn uptime_seconds(started: Instant) -> u64 {
    let ms = started.elapsed().as_millis() as u64;
    ms.div_ceil(1000)
}

fn render_statsz(shared: &Shared) -> String {
    let queue_depth = shared.queue.lock().expect("queue lock").len();
    let c = &shared.counters;
    let store = match &shared.store {
        Some(store) => {
            let s = store.stats();
            format!(
                "{{\"hits\":{},\"misses\":{},\"corrupt\":{},\"insertions\":{},\
                 \"evictions\":{},\"bytes_read\":{},\"bytes_written\":{},\
                 \"resident_bytes\":{}}}",
                s.hits,
                s.misses,
                s.corrupt,
                s.insertions,
                s.evictions,
                s.bytes_read,
                s.bytes_written,
                store.resident_bytes(),
            )
        }
        None => "null".to_owned(),
    };
    let cluster = match &shared.role {
        Role::Node => "null".to_owned(),
        Role::Shard(state) | Role::Router(state) => state.render_json(),
    };
    let tc = nvm_llc_sim::tape::cache::stats();
    let latency = format!(
        "{{\"request\":{},\"queue_wait\":{}}}",
        quantiles_json(metrics::request_seconds()),
        quantiles_json(metrics::queue_wait_seconds()),
    );
    sync_scrape_gauges(shared);
    format!(
        "{{\"queue_depth\":{queue_depth},\"queue_capacity\":{},\"workers\":{},\
         \"inflight_evals\":{},\"connections\":{},\"requests\":{},\"coalesce_hits\":{},\
         \"rejected_queue_full\":{},\"rejected_busy\":{},\"evaluations\":{},\
         \"store\":{store},\"tape_cache\":{{\"hits\":{},\"misses\":{},\
         \"store_hits\":{},\"resident_bytes\":{},\"evictions\":{}}},\
         \"uptime_seconds\":{},\"build\":{{\"version\":\"{}\",\"git_hash\":\"{}\"}},\
         \"requests_by_class\":{{\"2xx\":{},\"4xx\":{},\"5xx\":{}}},\
         \"latency\":{latency},\
         \"trace\":{{\"captured\":{},\"slow_threshold_us\":{}}},\
         \"cluster\":{cluster},\
         \"metrics\":{}}}",
        shared.config.queue_capacity,
        shared.config.workers,
        shared.inflight_evals.load(Ordering::SeqCst),
        c.connections.load(Ordering::Relaxed),
        c.requests.load(Ordering::Relaxed),
        c.coalesce_hits.load(Ordering::Relaxed),
        c.rejected_queue_full.load(Ordering::Relaxed),
        c.rejected_busy.load(Ordering::Relaxed),
        c.evaluations.load(Ordering::Relaxed),
        tc.hits,
        tc.misses,
        tc.store_hits,
        tc.resident_bytes,
        tc.evictions,
        uptime_seconds(shared.started),
        BUILD_VERSION,
        BUILD_GIT_HASH,
        c.by_class[0].load(Ordering::Relaxed),
        c.by_class[1].load(Ordering::Relaxed),
        c.by_class[2].load(Ordering::Relaxed),
        shared.tracez.len(),
        slow_threshold_micros(shared) as u64,
        nvm_llc_obs::metrics::render_json(),
    )
}

/// `p50/p95/p99` of one histogram as a JSON object, in whole
/// microseconds (integers keep the stats scrapable with naive parsers).
fn quantiles_json(hist: &nvm_llc_obs::metrics::Histogram) -> String {
    format!(
        "{{\"p50_us\":{},\"p95_us\":{},\"p99_us\":{}}}",
        (hist.quantile(0.5) * 1e6) as u64,
        (hist.quantile(0.95) * 1e6) as u64,
        (hist.quantile(0.99) * 1e6) as u64,
    )
}

/// Crate version baked into `/statsz` build info.
const BUILD_VERSION: &str = env!("CARGO_PKG_VERSION");

/// Git commit baked in at build time by `build.rs`: the
/// `NVM_LLC_GIT_HASH` environment variable when set (CI exports the
/// checked-out commit), otherwise `git rev-parse --short HEAD` from the
/// work tree, falling back to `unknown` only when neither is available
/// (e.g. a source-tarball build).
const BUILD_GIT_HASH: &str = env!("NVM_LLC_BUILD_GIT_HASH");

/// Refreshes the gauges that are cheaper to set at scrape time than to
/// maintain on every transition.
fn sync_scrape_gauges(shared: &Shared) {
    metrics::uptime_seconds().set(uptime_seconds(shared.started));
    metrics::queue_depth().set(shared.queue.lock().expect("queue lock").len() as u64);
    metrics::inflight_evals().set(shared.inflight_evals.load(Ordering::SeqCst) as u64);
}

/// `GET /metricsz`: the whole process-wide registry in Prometheus text
/// exposition format.
fn render_metricsz(shared: &Shared) -> String {
    sync_scrape_gauges(shared);
    nvm_llc_obs::metrics::render_prometheus()
}

/// `GET /clusterz`: every shard's `/metricsz` scraped over the
/// keep-alive pools and merged ([`nvm_llc_obs::federate`]) into one
/// cluster-level Prometheus view — counters summed, same-bounds
/// histograms merged — followed by a per-shard breakdown: up, request
/// total, latency quantiles, resident store bytes, evaluations. Both
/// halves render from the same scrape pass, so the merged totals always
/// equal the sum of the breakdown lines.
fn render_clusterz(shared: &Shared) -> String {
    use nvm_llc_obs::federate::{self, Scrape};
    use std::fmt::Write as _;

    // One scrape per shard, in shard-id order; `None` marks a shard
    // that is down or failed to answer. A standalone node federates
    // its own registry so the endpoint has one shape everywhere.
    let shards: Vec<(String, Option<Scrape>)> = match &shared.role {
        Role::Node => vec![(
            "self".to_owned(),
            Some(federate::parse(&render_metricsz(shared))),
        )],
        Role::Shard(state) | Role::Router(state) => state
            .peers
            .iter()
            .enumerate()
            .map(|(i, peer)| {
                let scrape = if Some(i) == state.self_id {
                    Some(federate::parse(&render_metricsz(shared)))
                } else {
                    match peer.get("/metricsz", &[]) {
                        Ok((200, body)) => Some(federate::parse(&body)),
                        Ok(_) | Err(_) => None,
                    }
                };
                (i.to_string(), scrape)
            })
            .collect(),
    };

    let up: Vec<Scrape> = shards
        .iter()
        .filter_map(|(_, s)| s.as_ref().cloned())
        .collect();
    let mut out = federate::merge(&up).render();

    out.push_str("# HELP nvmllc_cluster_shard_up Whether the shard answered this scrape.\n");
    out.push_str("# TYPE nvmllc_cluster_shard_up gauge\n");
    for (label, scrape) in &shards {
        let _ = writeln!(
            out,
            "nvmllc_cluster_shard_up{{shard=\"{label}\"}} {}",
            u8::from(scrape.is_some())
        );
    }
    // Per-shard breakdown of the headline families, labeled by shard.
    let scalar = |out: &mut String, family: &str, source: &str, help: &str, kind: &str| {
        let _ = writeln!(out, "# HELP {family} {help}");
        let _ = writeln!(out, "# TYPE {family} {kind}");
        for (label, scrape) in &shards {
            let Some(scrape) = scrape else { continue };
            let _ = writeln!(
                out,
                "{family}{{shard=\"{label}\"}} {}",
                scrape.scalar_total(source)
            );
        }
    };
    scalar(
        &mut out,
        "nvmllc_cluster_shard_requests_total",
        "nvmllc_serve_requests_total",
        "HTTP responses sent by each shard.",
        "counter",
    );
    scalar(
        &mut out,
        "nvmllc_cluster_shard_evaluations_total",
        "nvmllc_serve_evaluations_total",
        "Evaluations run by each shard.",
        "counter",
    );
    scalar(
        &mut out,
        "nvmllc_cluster_shard_store_resident_bytes",
        "nvmllc_store_resident_bytes",
        "Result-store bytes resident on each shard.",
        "gauge",
    );
    out.push_str(
        "# HELP nvmllc_cluster_shard_request_seconds Handler-latency quantiles per shard.\n",
    );
    out.push_str("# TYPE nvmllc_cluster_shard_request_seconds gauge\n");
    for (label, scrape) in &shards {
        let Some(hist) = scrape
            .as_ref()
            .and_then(|s| s.histogram("nvmllc_serve_request_seconds"))
        else {
            continue;
        };
        for q in ["0.5", "0.95", "0.99"] {
            let value = hist.quantile(q.parse().expect("literal quantile"));
            let _ = writeln!(
                out,
                "nvmllc_cluster_shard_request_seconds{{shard=\"{label}\",quantile=\"{q}\"}} {value}"
            );
        }
    }
    out
}

/// Process signal plumbing for the daemon: SIGTERM/SIGINT set a flag
/// the serve loop polls, so shutdown is always the graceful path.
pub mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Set by the installed handler on SIGTERM or SIGINT.
    pub static STOP: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        STOP.store(true, Ordering::SeqCst);
    }

    /// Installs the handler for SIGINT (2) and SIGTERM (15). Declares
    /// libc's `signal` directly — std links libc on unix, so no crate
    /// dependency is needed. No-op elsewhere.
    #[cfg(unix)]
    pub fn install() {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    /// Installs nothing on non-unix targets.
    #[cfg(not(unix))]
    pub fn install() {}
}

/// Runs the daemon: start, serve until SIGTERM/SIGINT, drain, report.
/// This is the whole of `nvm-llcd` and of `nvm-llc serve`.
pub fn run(config: ServeConfig) -> std::io::Result<()> {
    let shard = config
        .cluster
        .as_ref()
        .map(|c| format!("shard {}/{}", c.shard_id, c.shard_count));
    serve_until_signal(Server::start(config)?, shard.as_deref())
}

/// Runs a thin router until SIGTERM/SIGINT. This is the whole of
/// `nvm-llc route`.
pub fn run_router(config: RouterConfig) -> std::io::Result<()> {
    let role = format!("router over {} shards", config.peers.len());
    serve_until_signal(Server::start_router(config)?, Some(&role))
}

fn serve_until_signal(server: Server, role: Option<&str>) -> std::io::Result<()> {
    // The daemon defaults to lifecycle logging; NVM_LLC_LOG still wins.
    nvm_llc_obs::log::set_default_level(nvm_llc_obs::log::Level::Info);
    signals::install();
    nvm_llc_obs::info!(
        "serve", "listening";
        "addr" => format!("http://{}", server.addr()),
        "role" => role.unwrap_or("standalone"),
        "version" => BUILD_VERSION,
        "git_hash" => BUILD_GIT_HASH,
    );
    while !signals::STOP.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(100));
    }
    nvm_llc_obs::info!("serve", "draining in-flight work");
    nvm_llc_obs::info!("serve", "shutdown"; "summary" => server.summary());
    server.shutdown();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(addr: SocketAddr, target: &str) -> (u16, String) {
        http::get(addr, target).unwrap()
    }

    #[test]
    fn parse_args_round_trips_every_flag() {
        let args: Vec<String> = [
            "--addr",
            "0.0.0.0:0",
            "--workers",
            "2",
            "--queue-capacity",
            "0",
            "--max-evals",
            "8",
            "--eval-threads",
            "3",
            "--base-accesses",
            "5000",
            "--store-dir",
            "/tmp/x",
            "--max-requests-per-conn",
            "64",
            "--idle-timeout-ms",
            "250",
            "--trace-slow-ms",
            "75",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let c = ServeConfig::parse_args(&args).unwrap();
        assert_eq!(c.addr, "0.0.0.0:0");
        assert_eq!(c.workers, 2);
        assert_eq!(c.queue_capacity, 0);
        assert_eq!(c.max_evals, 8);
        assert_eq!(c.eval_threads, 3);
        assert_eq!(c.base_accesses, 5000);
        assert_eq!(c.store_dir, Some(PathBuf::from("/tmp/x")));
        assert_eq!(c.max_requests_per_conn, 64);
        assert_eq!(c.idle_timeout_ms, 250);
        assert_eq!(c.trace_slow_ms, Some(75));
        assert!(c.cluster.is_none());
    }

    #[test]
    fn parse_args_assembles_the_cluster_triple() {
        let s = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let c = ServeConfig::parse_args(&s(&[
            "--shard-id",
            "1",
            "--shard-count",
            "3",
            "--peers",
            "a:1,b:2,c:3",
        ]))
        .unwrap();
        let cluster = c.cluster.expect("cluster mode");
        assert_eq!(cluster.shard_id, 1);
        assert_eq!(cluster.shard_count, 3);
        assert_eq!(cluster.peers.len(), 3);
        // Partial triples and inconsistent ones are rejected.
        assert!(ServeConfig::parse_args(&s(&["--shard-id", "0"])).is_err());
        assert!(ServeConfig::parse_args(&s(&["--peers", "a:1,b:2"])).is_err());
        assert!(ServeConfig::parse_args(&s(&[
            "--shard-id",
            "3",
            "--shard-count",
            "3",
            "--peers",
            "a:1,b:2,c:3",
        ]))
        .is_err());
        assert!(ServeConfig::parse_args(&s(&[
            "--shard-id",
            "0",
            "--shard-count",
            "2",
            "--peers",
            "a:1,b:2,c:3",
        ]))
        .is_err());
    }

    #[test]
    fn parse_args_rejects_junk() {
        let s = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert!(ServeConfig::parse_args(&s(&["--nope"])).is_err());
        assert!(ServeConfig::parse_args(&s(&["--workers"])).is_err());
        assert!(ServeConfig::parse_args(&s(&["--workers", "0"])).is_err());
        assert!(ServeConfig::parse_args(&s(&["--base-accesses", "x"])).is_err());
        assert!(ServeConfig::parse_args(&s(&["--max-requests-per-conn", "0"])).is_err());
        assert!(ServeConfig::parse_args(&s(&["--idle-timeout-ms", "0"])).is_err());
        assert!(ServeConfig::parse_args(&[]).is_ok());
    }

    #[test]
    fn healthz_statsz_and_errors_respond() {
        let server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = server.addr();
        assert_eq!(request(addr, "/healthz"), (200, "ok\n".to_owned()));
        let (status, stats) = request(addr, "/statsz");
        assert_eq!(status, 200);
        assert!(stats.contains("\"queue_depth\":"), "{stats}");
        assert!(stats.contains("\"store\":null"), "{stats}");
        assert!(stats.contains("\"cluster\":null"), "{stats}");
        assert_eq!(request(addr, "/nope").0, 404);
        assert_eq!(request(addr, "/eval?workload=zzz&tech=Jan_S").0, 400);
        assert_eq!(request(addr, "/eval?workload=tonto").0, 400);
        assert_eq!(request(addr, "/row?workload=tonto&models=bogus").0, 400);
        assert_eq!(
            request(addr, "/row?workload=tonto&accesses=1").0,
            400,
            "accesses below range"
        );
        server.shutdown();
    }

    #[test]
    fn uptime_rounds_up_from_millisecond_resolution() {
        // A freshly started instant has elapsed less than a second but
        // more than zero work has happened; the report must not be 0.
        let started = Instant::now() - Duration::from_millis(5);
        assert_eq!(uptime_seconds(started), 1);
        let older = Instant::now() - Duration::from_millis(2_400);
        assert_eq!(uptime_seconds(older), 3, "2.4s rounds up to 3");
    }

    #[test]
    fn zero_queue_capacity_sheds_with_503() {
        let server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            queue_capacity: 0,
            ..ServeConfig::default()
        })
        .unwrap();
        let (status, body) = request(server.addr(), "/healthz");
        assert_eq!(status, 503);
        assert!(body.contains("queue full"), "{body}");
        server.shutdown();
    }

    #[test]
    fn zero_max_evals_rejects_with_429() {
        let server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            max_evals: 0,
            base_accesses: 500,
            ..ServeConfig::default()
        })
        .unwrap();
        let (status, body) = request(server.addr(), "/row?workload=tonto");
        assert_eq!(status, 429);
        assert!(body.contains("capacity"), "{body}");
        // Health stays green while evaluations are capped out.
        assert_eq!(request(server.addr(), "/healthz").0, 200);
        server.shutdown();
    }
}
