//! # nvm-llcd — the evaluation service
//!
//! A std-only HTTP/1.1 daemon over the workload × technology matrix:
//! `std::net::TcpListener`, a fixed worker pool, and no dependencies
//! beyond the workspace. Four endpoints:
//!
//! | endpoint   | answer |
//! |------------|--------|
//! | `/eval?workload=W&tech=T` | one technology's normalized cell |
//! | `/row?workload=W`        | the full matrix row for `W` |
//! | `/healthz`               | liveness (`ok`) |
//! | `/statsz`                | queue, coalescing, store, and tape-cache counters |
//! | `/metricsz`              | the same registry in Prometheus text exposition |
//!
//! Optional parameters on `/eval` and `/row`: `models`
//! (`fixed_capacity`, default, or `fixed_area`) and `accesses`
//! (per-thread base access count).
//!
//! ## Behavior under load
//!
//! * **Backpressure** — accepted connections wait in a bounded queue;
//!   when it is full the accept thread answers `503` immediately. A
//!   request that would start a new evaluation beyond the in-flight
//!   cap answers `429`.
//! * **Coalescing** — N identical concurrent requests cost one
//!   evaluation: the first becomes the *leader*, the rest block on its
//!   slot and receive byte-identical bodies.
//! * **Persistence** — with a store attached ([`ServeConfig::store_dir`])
//!   evaluations read through and write back the content-addressed
//!   result store, so a warm request — even after a daemon restart —
//!   skips simulation entirely.
//! * **Graceful shutdown** — SIGTERM/SIGINT (or [`Server::stop`]) stops
//!   accepting, drains queued and in-flight requests, then joins every
//!   worker.
//!
//! Responses are rendered by [`json`] with shortest-round-trip floats,
//! so a served body is byte-identical to rendering the same
//! `Evaluator` result locally — the integration tests pin exactly that.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod http;
pub mod json;

/// Service metrics in the process-wide [`nvm_llc_obs`] registry.
pub mod metrics {
    use nvm_llc_obs::metrics::{
        counter, counter_with, gauge, histogram, Counter, Gauge, Histogram,
    };

    /// `nvmllc_serve_requests_total{class=...}` — one instance per
    /// status class (`2xx`, `4xx`, `5xx`).
    pub fn requests(class: &str) -> &'static Counter {
        counter_with(
            "nvmllc_serve_requests_total",
            "HTTP responses sent, by status class.",
            &[("class", class)],
        )
    }

    /// `nvmllc_serve_request_seconds`
    pub fn request_seconds() -> &'static Histogram {
        histogram(
            "nvmllc_serve_request_seconds",
            "Handler latency: request parsed to response written.",
        )
    }

    /// `nvmllc_serve_queue_wait_seconds`
    pub fn queue_wait_seconds() -> &'static Histogram {
        histogram(
            "nvmllc_serve_queue_wait_seconds",
            "Time an accepted connection waited in the bounded queue.",
        )
    }

    /// `nvmllc_serve_queue_depth`
    pub fn queue_depth() -> &'static Gauge {
        gauge(
            "nvmllc_serve_queue_depth",
            "Connections currently waiting in the accept queue.",
        )
    }

    /// `nvmllc_serve_inflight_evals`
    pub fn inflight_evals() -> &'static Gauge {
        gauge(
            "nvmllc_serve_inflight_evals",
            "Evaluations currently running under the in-flight cap.",
        )
    }

    /// `nvmllc_serve_rejected_total{reason=...}` — `queue_full` (503)
    /// or `busy` (429).
    pub fn rejected(reason: &str) -> &'static Counter {
        counter_with(
            "nvmllc_serve_rejected_total",
            "Requests shed by backpressure, by reason.",
            &[("reason", reason)],
        )
    }

    /// `nvmllc_serve_coalesce_waiters_total`
    pub fn coalesce_waiters() -> &'static Counter {
        counter(
            "nvmllc_serve_coalesce_waiters_total",
            "Requests that waited on another request's identical evaluation.",
        )
    }

    /// `nvmllc_serve_evaluations_total`
    pub fn evaluations() -> &'static Counter {
        counter(
            "nvmllc_serve_evaluations_total",
            "Evaluations actually run (coalesced waiters excluded).",
        )
    }

    /// `nvmllc_serve_uptime_seconds`
    pub fn uptime_seconds() -> &'static Gauge {
        gauge(
            "nvmllc_serve_uptime_seconds",
            "Seconds since the server started (set at scrape time).",
        )
    }

    /// Pre-registers the whole workspace metric inventory — every serve
    /// family above plus the evaluator, tape-cache, trace-cache, and
    /// store families — so a scrape of a freshly started (or purely
    /// store-served) daemon shows zeros instead of missing series.
    pub fn register() {
        for class in ["2xx", "4xx", "5xx"] {
            requests(class);
        }
        request_seconds();
        queue_wait_seconds();
        queue_depth();
        inflight_evals();
        for reason in ["queue_full", "busy"] {
            rejected(reason);
        }
        coalesce_waiters();
        evaluations();
        uptime_seconds();
        nvm_llc_obs::metrics::histogram(
            "nvmllc_serve_handle_seconds",
            "Wall time of the `serve_handle` span.",
        );
        nvm_llc_sim::runner::metrics::register();
        nvm_llc_sim::tape::cache::metrics::register();
        nvm_llc_trace::cache::metrics::register();
        nvm_llc_store::metrics::register();
    }
}

use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use nvm_llc_circuit::{reference, LlcModel};
use nvm_llc_sim::Evaluator;
use nvm_llc_store::Store;
use nvm_llc_trace::workloads;

/// Service configuration; every field has a serving-friendly default.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`127.0.0.1:7878`; port `0` picks one).
    pub addr: String,
    /// Worker threads handling parsed requests.
    pub workers: usize,
    /// Bounded accept queue; a full queue answers `503`.
    pub queue_capacity: usize,
    /// Concurrent evaluations allowed; excess leaders answer `429`.
    pub max_evals: usize,
    /// Worker threads *inside* each evaluation (`Evaluator::threads`).
    pub eval_threads: usize,
    /// Default per-thread base access count when a request names none.
    pub base_accesses: usize,
    /// Persistent result-store directory (none: in-memory caches only).
    pub store_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".to_owned(),
            workers: 4,
            queue_capacity: 64,
            max_evals: 4,
            eval_threads: 1,
            base_accesses: 20_000,
            store_dir: None,
        }
    }
}

/// One-line flag summary shared by `nvm-llcd --help` and
/// `nvm-llc serve --help`.
pub const USAGE: &str = "\
options:
  --addr HOST:PORT       listen address (default 127.0.0.1:7878)
  --workers N            request worker threads (default 4)
  --queue-capacity N     pending-connection bound; full => 503 (default 64)
  --max-evals N          concurrent evaluations; exhausted => 429 (default 4)
  --eval-threads N       worker threads inside one evaluation (default 1)
  --base-accesses N      default per-thread trace accesses (default 20000)
  --store-dir PATH       persistent content-addressed result store";

impl ServeConfig {
    /// Parses daemon flags (see [`USAGE`]). Unknown flags, missing
    /// values, and out-of-range numbers are errors.
    pub fn parse_args(args: &[String]) -> Result<ServeConfig, String> {
        fn next<'a>(
            it: &mut impl Iterator<Item = &'a String>,
            flag: &str,
        ) -> Result<&'a str, String> {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} needs a value"))
        }
        fn positive(raw: &str, flag: &str) -> Result<usize, String> {
            raw.parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| format!("{flag} wants an integer >= 1, got {raw:?}"))
        }
        let mut config = ServeConfig::default();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--addr" => config.addr = next(&mut it, flag)?.to_owned(),
                "--workers" => config.workers = positive(next(&mut it, flag)?, flag)?,
                "--queue-capacity" => {
                    let raw = next(&mut it, flag)?;
                    config.queue_capacity = raw
                        .parse()
                        .map_err(|_| format!("{flag} wants an integer >= 0, got {raw:?}"))?;
                }
                "--max-evals" => {
                    let raw = next(&mut it, flag)?;
                    config.max_evals = raw
                        .parse()
                        .map_err(|_| format!("{flag} wants an integer >= 0, got {raw:?}"))?;
                }
                "--eval-threads" => config.eval_threads = positive(next(&mut it, flag)?, flag)?,
                "--base-accesses" => config.base_accesses = positive(next(&mut it, flag)?, flag)?,
                "--store-dir" => config.store_dir = Some(PathBuf::from(next(&mut it, flag)?)),
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        Ok(config)
    }
}

/// Service-level counters, all monotone.
#[derive(Debug, Default)]
struct Counters {
    requests: AtomicU64,
    coalesce_hits: AtomicU64,
    rejected_queue_full: AtomicU64,
    rejected_busy: AtomicU64,
    evaluations: AtomicU64,
    /// Responses by status class: [2xx, 4xx, 5xx].
    by_class: [AtomicU64; 3],
}

impl Counters {
    /// Counts one response toward its status class, here and in the
    /// process-wide registry.
    fn count_status(&self, status: u16) {
        let (idx, class) = match status / 100 {
            2 => (0, "2xx"),
            4 => (1, "4xx"),
            _ => (2, "5xx"),
        };
        self.by_class[idx].fetch_add(1, Ordering::Relaxed);
        metrics::requests(class).inc();
    }
}

/// How one evaluation ended: a shared response body, or a status code
/// plus error message.
type EvalOutcome = Result<Arc<String>, (u16, String)>;

/// The coalescing rendezvous for one in-flight evaluation key: the
/// leader publishes exactly once, waiters block until it does.
struct EvalSlot {
    state: Mutex<Option<EvalOutcome>>,
    ready: Condvar,
}

impl EvalSlot {
    fn new() -> EvalSlot {
        EvalSlot {
            state: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn publish(&self, outcome: EvalOutcome) {
        *self.state.lock().expect("slot lock") = Some(outcome);
        self.ready.notify_all();
    }

    fn wait(&self) -> EvalOutcome {
        let mut state = self.state.lock().expect("slot lock");
        loop {
            if let Some(outcome) = state.as_ref() {
                return outcome.clone();
            }
            state = self.ready.wait(state).expect("slot lock");
        }
    }
}

struct Shared {
    config: ServeConfig,
    queue: Mutex<VecDeque<(TcpStream, Instant)>>,
    queue_cv: Condvar,
    stop: AtomicBool,
    counters: Counters,
    coalesce: Mutex<HashMap<String, Arc<EvalSlot>>>,
    inflight_evals: AtomicUsize,
    store: Option<Arc<Store>>,
    started: Instant,
    next_request_id: AtomicU64,
}

/// A running service instance.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

impl Server {
    /// Binds, opens the store (when configured), and spawns the accept
    /// thread plus the worker pool. Returns once the service accepts.
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        metrics::register();
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let store = match &config.store_dir {
            Some(dir) => Some(Arc::new(Store::open(dir)?)),
            None => None,
        };
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            config,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            stop: AtomicBool::new(false),
            counters: Counters::default(),
            coalesce: Mutex::new(HashMap::new()),
            inflight_evals: AtomicUsize::new(0),
            store,
            started: Instant::now(),
            next_request_id: AtomicU64::new(1),
        });
        let mut threads = Vec::with_capacity(workers + 1);
        {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("nvm-llcd-accept".into())
                    .spawn(move || accept_loop(&shared, listener))?,
            );
        }
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("nvm-llcd-worker-{i}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }
        Ok(Server {
            shared,
            addr,
            threads,
        })
    }

    /// The bound address (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown: stop accepting, drain queued and in-flight
    /// work. Idempotent; [`Server::join`] completes it.
    pub fn stop(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
    }

    /// Whether shutdown has been requested.
    pub fn stopping(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }

    /// Waits for every thread to finish draining and exit.
    pub fn join(mut self) {
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }

    /// [`Server::stop`] then [`Server::join`].
    pub fn shutdown(self) {
        self.stop();
        self.join();
    }

    /// One-line lifetime summary (for the daemon's shutdown log).
    pub fn summary(&self) -> String {
        let c = &self.shared.counters;
        format!(
            "{} requests, {} evaluations, {} coalesced, {} queue-rejected, {} busy-rejected",
            c.requests.load(Ordering::Relaxed),
            c.evaluations.load(Ordering::Relaxed),
            c.coalesce_hits.load(Ordering::Relaxed),
            c.rejected_queue_full.load(Ordering::Relaxed),
            c.rejected_busy.load(Ordering::Relaxed),
        )
    }
}

fn accept_loop(shared: &Shared, listener: TcpListener) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                // The listener is nonblocking (so shutdown can interrupt
                // the accept loop); handled streams must not be.
                let _ = stream.set_nonblocking(false);
                let mut queue = shared.queue.lock().expect("queue lock");
                if queue.len() >= shared.config.queue_capacity {
                    drop(queue);
                    shared
                        .counters
                        .rejected_queue_full
                        .fetch_add(1, Ordering::Relaxed);
                    metrics::rejected("queue_full").inc();
                    shared.counters.count_status(503);
                    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
                    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
                    // Drain the request head before answering: closing
                    // with unread bytes resets the connection and can
                    // discard the 503 before the client sees it.
                    let _ = http::read_request(&mut stream);
                    let _ = http::respond(
                        &mut stream,
                        503,
                        "application/json",
                        "{\"error\":\"request queue full\"}",
                    );
                } else {
                    queue.push_back((stream, Instant::now()));
                    metrics::queue_depth().set(queue.len() as u64);
                    drop(queue);
                    shared.queue_cv.notify_one();
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    // Wake any idle worker so it can observe the stop flag.
    shared.queue_cv.notify_all();
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                // Pop before honoring stop: shutdown drains the queue.
                if let Some((stream, enqueued)) = queue.pop_front() {
                    metrics::queue_depth().set(queue.len() as u64);
                    break Some((stream, enqueued));
                }
                if shared.stop.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) = shared
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(100))
                    .expect("queue lock");
                queue = guard;
            }
        };
        match stream {
            Some((stream, enqueued)) => {
                metrics::queue_wait_seconds().record(enqueued.elapsed().as_secs_f64());
                handle_connection(shared, stream);
            }
            None => break,
        }
    }
}

fn error_json(message: &str) -> String {
    format!("{{\"error\":\"{message}\"}}")
}

fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    let _span = nvm_llc_obs::span!("serve_handle");
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let request = match http::read_request(&mut stream) {
        Ok(request) => request,
        Err(_) => {
            shared.counters.count_status(400);
            let _ = http::respond(
                &mut stream,
                400,
                "application/json",
                &error_json("malformed request"),
            );
            return;
        }
    };
    let request_id = shared.next_request_id.fetch_add(1, Ordering::Relaxed);
    shared.counters.requests.fetch_add(1, Ordering::Relaxed);
    let start = Instant::now();
    let (status, content_type, body) = route(shared, &request);
    let elapsed = start.elapsed();
    metrics::request_seconds().record(elapsed.as_secs_f64());
    shared.counters.count_status(status);
    nvm_llc_obs::debug!(
        "serve", "request";
        "request_id" => request_id,
        "path" => request.path.as_str(),
        "status" => u64::from(status),
        "micros" => elapsed.as_micros() as u64,
    );
    let _ = http::respond(&mut stream, status, content_type, &body);
}

fn route(shared: &Shared, request: &http::Request) -> (u16, &'static str, String) {
    if request.method != "GET" {
        return (405, "application/json", error_json("GET only"));
    }
    match request.path.as_str() {
        "/healthz" => (200, "text/plain", "ok\n".to_owned()),
        "/statsz" => (200, "application/json", render_statsz(shared)),
        "/metricsz" => (200, "text/plain; version=0.0.4", render_metricsz(shared)),
        "/eval" | "/row" => {
            let (status, body) = eval_endpoint(shared, request);
            (status, "application/json", body)
        }
        _ => (404, "application/json", error_json("unknown path")),
    }
}

/// The model sets a request may evaluate against.
fn models_for(set: &str) -> Option<Vec<LlcModel>> {
    match set {
        "fixed_capacity" => Some(reference::fixed_capacity()),
        "fixed_area" => Some(reference::fixed_area()),
        _ => None,
    }
}

/// A validated evaluation request: everything that identifies its
/// output, and therefore its coalescing key.
#[derive(Debug, Clone, PartialEq, Eq)]
struct EvalRequest {
    /// `None`: full row; `Some(tech)`: one cell.
    tech: Option<String>,
    models: String,
    workload: String,
    accesses: usize,
}

impl EvalRequest {
    fn key(&self) -> String {
        format!(
            "{}|{}|{}|{}",
            self.tech.as_deref().unwrap_or("<row>"),
            self.models,
            self.workload,
            self.accesses,
        )
    }
}

/// Bounds on the per-request `accesses` override: enough to be
/// meaningful, small enough that one request cannot wedge a worker.
const ACCESSES_RANGE: std::ops::RangeInclusive<usize> = 100..=5_000_000;

fn parse_eval_request(shared: &Shared, request: &http::Request) -> Result<EvalRequest, String> {
    let models = request.param("models").unwrap_or("fixed_capacity");
    let model_set = models_for(models).ok_or_else(|| {
        format!("unknown models set {models:?} (want fixed_capacity or fixed_area)")
    })?;
    let workload = request
        .param("workload")
        .ok_or("missing required parameter: workload")?;
    if workloads::by_name(workload).is_none() {
        return Err(format!("unknown workload {workload:?}"));
    }
    let accesses = match request.param("accesses") {
        None => shared.config.base_accesses,
        Some(raw) => raw
            .parse::<usize>()
            .ok()
            .filter(|n| ACCESSES_RANGE.contains(n))
            .ok_or_else(|| {
                format!(
                    "accesses wants an integer in {}..={}, got {raw:?}",
                    ACCESSES_RANGE.start(),
                    ACCESSES_RANGE.end()
                )
            })?,
    };
    let tech = if request.path == "/eval" {
        let tech = request
            .param("tech")
            .ok_or("missing required parameter: tech")?;
        if reference::by_name(&model_set, tech).is_none() {
            return Err(format!(
                "unknown technology {tech:?} in models set {models:?}"
            ));
        }
        Some(tech.to_owned())
    } else {
        None
    };
    Ok(EvalRequest {
        tech,
        models: models.to_owned(),
        workload: workload.to_owned(),
        accesses,
    })
}

fn eval_endpoint(shared: &Shared, request: &http::Request) -> (u16, String) {
    let parsed = match parse_eval_request(shared, request) {
        Ok(parsed) => parsed,
        Err(message) => return (400, error_json(&message)),
    };
    let key = parsed.key();
    let (slot, leader) = {
        let mut map = shared.coalesce.lock().expect("coalesce lock");
        match map.get(&key) {
            Some(slot) => (Arc::clone(slot), false),
            None => {
                let slot = Arc::new(EvalSlot::new());
                map.insert(key.clone(), Arc::clone(&slot));
                (slot, true)
            }
        }
    };
    if !leader {
        shared
            .counters
            .coalesce_hits
            .fetch_add(1, Ordering::Relaxed);
        metrics::coalesce_waiters().inc();
        return match slot.wait() {
            Ok(body) => (200, (*body).clone()),
            Err((status, body)) => (status, body),
        };
    }
    let outcome = evaluate(shared, &parsed);
    slot.publish(match &outcome {
        Ok(body) => Ok(Arc::new(body.clone())),
        Err(err) => Err(err.clone()),
    });
    shared.coalesce.lock().expect("coalesce lock").remove(&key);
    match outcome {
        Ok(body) => (200, body),
        Err((status, body)) => (status, body),
    }
}

/// Runs one evaluation under the in-flight cap, rendering its JSON.
fn evaluate(shared: &Shared, request: &EvalRequest) -> Result<String, (u16, String)> {
    let cap = shared.config.max_evals;
    let admitted = shared
        .inflight_evals
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
            (n < cap).then_some(n + 1)
        })
        .is_ok();
    if !admitted {
        shared
            .counters
            .rejected_busy
            .fetch_add(1, Ordering::Relaxed);
        metrics::rejected("busy").inc();
        return Err((
            429,
            error_json("evaluation capacity exhausted, retry later"),
        ));
    }
    metrics::inflight_evals().set(shared.inflight_evals.load(Ordering::SeqCst) as u64);
    let result = run_evaluation(shared, request);
    shared.inflight_evals.fetch_sub(1, Ordering::SeqCst);
    metrics::inflight_evals().set(shared.inflight_evals.load(Ordering::SeqCst) as u64);
    shared.counters.evaluations.fetch_add(1, Ordering::Relaxed);
    metrics::evaluations().inc();
    result
}

fn run_evaluation(shared: &Shared, request: &EvalRequest) -> Result<String, (u16, String)> {
    let internal = |what: &str| (500, error_json(what));
    let models = models_for(&request.models).ok_or_else(|| internal("models set vanished"))?;
    let baseline =
        reference::by_name(&models, "SRAM").ok_or_else(|| internal("no SRAM baseline"))?;
    let nvms: Vec<LlcModel> = match &request.tech {
        Some(tech) => {
            vec![reference::by_name(&models, tech).ok_or_else(|| internal("tech vanished"))?]
        }
        None => models.into_iter().filter(|m| m.name != "SRAM").collect(),
    };
    let workload =
        workloads::by_name(&request.workload).ok_or_else(|| internal("workload vanished"))?;
    let mut evaluator = Evaluator::new(baseline, nvms)
        .base_accesses(request.accesses)
        .threads(shared.config.eval_threads.max(1));
    if let Some(store) = &shared.store {
        evaluator = evaluator.store(Arc::clone(store));
    }
    let row = evaluator.run_workload(&workload);
    Ok(match &request.tech {
        Some(_) => {
            let entry = row.entries.first().ok_or_else(|| internal("empty row"))?;
            json::render_cell(&row.workload, entry)
        }
        None => json::render_row(&row),
    })
}

fn render_statsz(shared: &Shared) -> String {
    let queue_depth = shared.queue.lock().expect("queue lock").len();
    let c = &shared.counters;
    let store = match &shared.store {
        Some(store) => {
            let s = store.stats();
            format!(
                "{{\"hits\":{},\"misses\":{},\"corrupt\":{},\"insertions\":{},\
                 \"evictions\":{},\"bytes_read\":{},\"bytes_written\":{},\
                 \"resident_bytes\":{}}}",
                s.hits,
                s.misses,
                s.corrupt,
                s.insertions,
                s.evictions,
                s.bytes_read,
                s.bytes_written,
                store.resident_bytes(),
            )
        }
        None => "null".to_owned(),
    };
    let tc = nvm_llc_sim::tape::cache::stats();
    sync_scrape_gauges(shared);
    format!(
        "{{\"queue_depth\":{queue_depth},\"queue_capacity\":{},\"workers\":{},\
         \"inflight_evals\":{},\"requests\":{},\"coalesce_hits\":{},\
         \"rejected_queue_full\":{},\"rejected_busy\":{},\"evaluations\":{},\
         \"store\":{store},\"tape_cache\":{{\"hits\":{},\"misses\":{},\
         \"store_hits\":{},\"resident_bytes\":{},\"evictions\":{}}},\
         \"uptime_seconds\":{},\"build\":{{\"version\":\"{}\",\"git_hash\":\"{}\"}},\
         \"requests_by_class\":{{\"2xx\":{},\"4xx\":{},\"5xx\":{}}},\
         \"metrics\":{}}}",
        shared.config.queue_capacity,
        shared.config.workers,
        shared.inflight_evals.load(Ordering::SeqCst),
        c.requests.load(Ordering::Relaxed),
        c.coalesce_hits.load(Ordering::Relaxed),
        c.rejected_queue_full.load(Ordering::Relaxed),
        c.rejected_busy.load(Ordering::Relaxed),
        c.evaluations.load(Ordering::Relaxed),
        tc.hits,
        tc.misses,
        tc.store_hits,
        tc.resident_bytes,
        tc.evictions,
        shared.started.elapsed().as_secs(),
        BUILD_VERSION,
        BUILD_GIT_HASH,
        c.by_class[0].load(Ordering::Relaxed),
        c.by_class[1].load(Ordering::Relaxed),
        c.by_class[2].load(Ordering::Relaxed),
        nvm_llc_obs::metrics::render_json(),
    )
}

/// Crate version baked into `/statsz` build info.
const BUILD_VERSION: &str = env!("CARGO_PKG_VERSION");

/// Git commit baked in at build time by `build.rs`: the
/// `NVM_LLC_GIT_HASH` environment variable when set (CI exports the
/// checked-out commit), otherwise `git rev-parse --short HEAD` from the
/// work tree, falling back to `unknown` only when neither is available
/// (e.g. a source-tarball build).
const BUILD_GIT_HASH: &str = env!("NVM_LLC_BUILD_GIT_HASH");

/// Refreshes the gauges that are cheaper to set at scrape time than to
/// maintain on every transition.
fn sync_scrape_gauges(shared: &Shared) {
    metrics::uptime_seconds().set(shared.started.elapsed().as_secs());
    metrics::queue_depth().set(shared.queue.lock().expect("queue lock").len() as u64);
    metrics::inflight_evals().set(shared.inflight_evals.load(Ordering::SeqCst) as u64);
}

/// `GET /metricsz`: the whole process-wide registry in Prometheus text
/// exposition format.
fn render_metricsz(shared: &Shared) -> String {
    sync_scrape_gauges(shared);
    nvm_llc_obs::metrics::render_prometheus()
}

/// Process signal plumbing for the daemon: SIGTERM/SIGINT set a flag
/// the serve loop polls, so shutdown is always the graceful path.
pub mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Set by the installed handler on SIGTERM or SIGINT.
    pub static STOP: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        STOP.store(true, Ordering::SeqCst);
    }

    /// Installs the handler for SIGINT (2) and SIGTERM (15). Declares
    /// libc's `signal` directly — std links libc on unix, so no crate
    /// dependency is needed. No-op elsewhere.
    #[cfg(unix)]
    pub fn install() {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    /// Installs nothing on non-unix targets.
    #[cfg(not(unix))]
    pub fn install() {}
}

/// Runs the daemon: start, serve until SIGTERM/SIGINT, drain, report.
/// This is the whole of `nvm-llcd` and of `nvm-llc serve`.
pub fn run(config: ServeConfig) -> std::io::Result<()> {
    // The daemon defaults to lifecycle logging; NVM_LLC_LOG still wins.
    nvm_llc_obs::log::set_default_level(nvm_llc_obs::log::Level::Info);
    signals::install();
    let server = Server::start(config)?;
    nvm_llc_obs::info!(
        "serve", "listening";
        "addr" => format!("http://{}", server.addr()),
        "version" => BUILD_VERSION,
        "git_hash" => BUILD_GIT_HASH,
    );
    while !signals::STOP.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(100));
    }
    nvm_llc_obs::info!("serve", "draining in-flight work");
    nvm_llc_obs::info!("serve", "shutdown"; "summary" => server.summary());
    server.shutdown();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(addr: SocketAddr, target: &str) -> (u16, String) {
        http::get(addr, target).unwrap()
    }

    #[test]
    fn parse_args_round_trips_every_flag() {
        let args: Vec<String> = [
            "--addr",
            "0.0.0.0:0",
            "--workers",
            "2",
            "--queue-capacity",
            "0",
            "--max-evals",
            "8",
            "--eval-threads",
            "3",
            "--base-accesses",
            "5000",
            "--store-dir",
            "/tmp/x",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let c = ServeConfig::parse_args(&args).unwrap();
        assert_eq!(c.addr, "0.0.0.0:0");
        assert_eq!(c.workers, 2);
        assert_eq!(c.queue_capacity, 0);
        assert_eq!(c.max_evals, 8);
        assert_eq!(c.eval_threads, 3);
        assert_eq!(c.base_accesses, 5000);
        assert_eq!(c.store_dir, Some(PathBuf::from("/tmp/x")));
    }

    #[test]
    fn parse_args_rejects_junk() {
        let s = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert!(ServeConfig::parse_args(&s(&["--nope"])).is_err());
        assert!(ServeConfig::parse_args(&s(&["--workers"])).is_err());
        assert!(ServeConfig::parse_args(&s(&["--workers", "0"])).is_err());
        assert!(ServeConfig::parse_args(&s(&["--base-accesses", "x"])).is_err());
        assert!(ServeConfig::parse_args(&[]).is_ok());
    }

    #[test]
    fn healthz_statsz_and_errors_respond() {
        let server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = server.addr();
        assert_eq!(request(addr, "/healthz"), (200, "ok\n".to_owned()));
        let (status, stats) = request(addr, "/statsz");
        assert_eq!(status, 200);
        assert!(stats.contains("\"queue_depth\":"), "{stats}");
        assert!(stats.contains("\"store\":null"), "{stats}");
        assert_eq!(request(addr, "/nope").0, 404);
        assert_eq!(request(addr, "/eval?workload=zzz&tech=Jan_S").0, 400);
        assert_eq!(request(addr, "/eval?workload=tonto").0, 400);
        assert_eq!(request(addr, "/row?workload=tonto&models=bogus").0, 400);
        assert_eq!(
            request(addr, "/row?workload=tonto&accesses=1").0,
            400,
            "accesses below range"
        );
        server.shutdown();
    }

    #[test]
    fn zero_queue_capacity_sheds_with_503() {
        let server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            queue_capacity: 0,
            ..ServeConfig::default()
        })
        .unwrap();
        let (status, body) = request(server.addr(), "/healthz");
        assert_eq!(status, 503);
        assert!(body.contains("queue full"), "{body}");
        server.shutdown();
    }

    #[test]
    fn zero_max_evals_rejects_with_429() {
        let server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            max_evals: 0,
            base_accesses: 500,
            ..ServeConfig::default()
        })
        .unwrap();
        let (status, body) = request(server.addr(), "/row?workload=tonto");
        assert_eq!(status, 429);
        assert!(body.contains("capacity"), "{body}");
        // Health stays green while evaluations are capped out.
        assert_eq!(request(server.addr(), "/healthz").0, 200);
        server.shutdown();
    }
}
