//! Minimal HTTP/1.1 plumbing for the evaluation service.
//!
//! Just enough of the protocol for `nvm-llcd`'s GET endpoints: a
//! line-oriented request parser (request line + headers, no body) and a
//! `Connection: close` response writer with an exact `Content-Length`.
//! Query strings decode `%XX` escapes and `+` as space. Anything
//! malformed parses to an error the server answers with `400`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Maximum accepted header section, bytes. Longer requests are
/// malformed by decree — the service's real requests are tiny.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed request: method, decoded path, decoded query parameters
/// in arrival order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method (`GET`).
    pub method: String,
    /// Path without the query string (`/eval`).
    pub path: String,
    /// Decoded `key=value` pairs from the query string.
    pub query: Vec<(String, String)>,
}

impl Request {
    /// First value of a query parameter, if present.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Decodes `%XX` escapes and `+` (space). Invalid escapes pass through
/// literally — the service's identifiers never contain `%` anyway.
fn percent_decode(raw: &str) -> String {
    let bytes = raw.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' if i + 2 < bytes.len() => {
                match std::str::from_utf8(&bytes[i + 1..i + 3])
                    .ok()
                    .and_then(|hex| u8::from_str_radix(hex, 16).ok())
                {
                    Some(v) => {
                        out.push(v);
                        i += 2;
                    }
                    None => out.push(b'%'),
                }
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Parses the head of one HTTP/1.1 request from `stream`. Headers are
/// read and discarded (the service's endpoints are GET-only).
pub fn read_request(stream: &mut impl Read) -> std::io::Result<Request> {
    let malformed = |what: &str| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("malformed request: {what}"),
        )
    };
    let mut reader = BufReader::new(stream.take(MAX_HEAD_BYTES as u64));
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| malformed("empty request line"))?;
    let target = parts.next().ok_or_else(|| malformed("missing target"))?;
    let version = parts.next().ok_or_else(|| malformed("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(malformed("not HTTP/1.x"));
    }
    // Drain headers up to the blank line; none influence routing.
    loop {
        let mut header = String::new();
        let n = reader.read_line(&mut header)?;
        if n == 0 {
            return Err(malformed("truncated header section"));
        }
        if header == "\r\n" || header == "\n" {
            break;
        }
    }
    let (path, query_raw) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = query_raw
        .split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect();
    Ok(Request {
        method: method.to_uppercase(),
        path: percent_decode(path),
        query,
    })
}

/// Writes one complete `Connection: close` response.
pub fn respond(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    )?;
    stream.flush()
}

/// Writes one minimal `GET` request for `target`.
pub fn write_get(stream: &mut impl Write, target: &str) -> std::io::Result<()> {
    write!(
        stream,
        "GET {target} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()
}

/// One blocking loopback GET: connect, request, read to EOF. Returns
/// `(status, body)`. The client half used by tests and the serve
/// benchmark's load generator.
pub fn get(addr: SocketAddr, target: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    stream.set_write_timeout(Some(Duration::from_secs(60)))?;
    write_get(&mut stream, target)?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let malformed = || std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response");
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(malformed)?;
    let body = raw
        .split("\r\n\r\n")
        .nth(1)
        .ok_or_else(malformed)?
        .to_owned();
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &str) -> std::io::Result<Request> {
        read_request(&mut raw.as_bytes())
    }

    #[test]
    fn parses_path_query_and_method() {
        let r = parse("GET /eval?workload=tonto&tech=Jan_S HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/eval");
        assert_eq!(r.param("workload"), Some("tonto"));
        assert_eq!(r.param("tech"), Some("Jan_S"));
        assert_eq!(r.param("absent"), None);
    }

    #[test]
    fn decodes_percent_escapes_and_plus() {
        let r = parse("GET /x?a=b%20c&d=e+f&bad=%zz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.param("a"), Some("b c"));
        assert_eq!(r.param("d"), Some("e f"));
        assert_eq!(r.param("bad"), Some("%zz"), "invalid escape passes through");
    }

    #[test]
    fn malformed_requests_error_cleanly() {
        assert!(parse("\r\n\r\n").is_err());
        assert!(parse("GET /x\r\n\r\n").is_err(), "missing version");
        assert!(parse("GET /x SMTP/1.0\r\n\r\n").is_err(), "wrong protocol");
        assert!(
            parse("GET /x HTTP/1.1\r\nHost: y\r\n").is_err(),
            "no blank line"
        );
    }

    #[test]
    fn response_carries_exact_content_length() {
        let mut out = Vec::new();
        respond(&mut out, 200, "application/json", "{\"ok\":true}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
        let mut out = Vec::new();
        respond(&mut out, 429, "text/plain", "busy").unwrap();
        assert!(String::from_utf8(out)
            .unwrap()
            .contains("429 Too Many Requests"));
    }
}
