//! HTTP/1.1 plumbing for the evaluation service: persistent
//! connections, pipelining, and exact-length responses.
//!
//! The server side is built around [`ConnBuffer`], a per-connection
//! read buffer that parses any number of request heads out of whatever
//! the socket delivers — several requests pipelined into one TCP
//! segment, or one request head split across many reads. Responses
//! carry an exact `Content-Length` and an explicit `Connection:
//! keep-alive`/`close`, so a client can read back-to-back responses off
//! one connection without sniffing for EOF.
//!
//! The client side mirrors it: [`ClientConn`] holds one keep-alive
//! connection, supports pipelined sends, and parses `Content-Length`
//! framed responses. [`get`] remains the one-shot `Connection: close`
//! convenience used by tests and cold paths.
//!
//! Query strings decode `%XX` escapes and `+` as space. A malformed
//! request head parses to [`ParseError::Malformed`] — the server
//! answers `400` and, because the bad head was still fully consumed,
//! keeps the connection and parses the next pipelined request. Only a
//! head that never terminates within [`MAX_HEAD_BYTES`] is fatal
//! ([`ParseError::TooLarge`], answered `431`, connection closed — with
//! no head boundary there is nothing to resynchronize on).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Maximum accepted header section, bytes. A head that has not
/// terminated within this bound is rejected with `431` — the service's
/// real requests are tiny.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed request: method, decoded path, decoded query parameters
/// in arrival order, and the headers that matter for connection
/// management and proxying.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method (`GET`).
    pub method: String,
    /// Path without the query string (`/eval`).
    pub path: String,
    /// Decoded `key=value` pairs from the query string.
    pub query: Vec<(String, String)>,
    /// The request target exactly as received (path + raw query) — what
    /// a proxy forwards upstream verbatim.
    pub raw_target: String,
    /// Header names (lowercased) and trimmed values, arrival order.
    pub headers: Vec<(String, String)>,
    /// Whether the peer asked this connection to close after the
    /// response (`Connection: close`, or HTTP/1.0 without
    /// `keep-alive`).
    pub close: bool,
}

impl Request {
    /// First value of a query parameter, if present.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a buffered head failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The head was complete but malformed; it has been consumed from
    /// the buffer, so the connection can answer `400` and carry on.
    Malformed(String),
    /// The head grew past [`MAX_HEAD_BYTES`] without terminating;
    /// answer `431` and close — there is no boundary to recover at.
    TooLarge,
}

/// Decodes `%XX` escapes and `+` (space). Invalid escapes pass through
/// literally — the service's identifiers never contain `%` anyway.
fn percent_decode(raw: &str) -> String {
    let bytes = raw.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' if i + 2 < bytes.len() => {
                match std::str::from_utf8(&bytes[i + 1..i + 3])
                    .ok()
                    .and_then(|hex| u8::from_str_radix(hex, 16).ok())
                {
                    Some(v) => {
                        out.push(v);
                        i += 2;
                    }
                    None => out.push(b'%'),
                }
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Index one past the blank line ending the head starting at `from`,
/// accepting both `\r\n\r\n` and bare `\n\n` line endings.
fn head_end(buf: &[u8], from: usize) -> Option<usize> {
    let mut i = from;
    while i < buf.len() {
        if buf[i] != b'\n' {
            i += 1;
            continue;
        }
        // A newline followed by an (optionally `\r`-prefixed) newline
        // terminates the head.
        if buf.get(i + 1) == Some(&b'\n') {
            return Some(i + 2);
        }
        if buf.get(i + 1) == Some(&b'\r') && buf.get(i + 2) == Some(&b'\n') {
            return Some(i + 3);
        }
        i += 1;
    }
    None
}

/// Parses one complete head (request line + headers, no body).
fn parse_head(head: &str) -> Result<Request, ParseError> {
    let malformed = |what: &str| ParseError::Malformed(what.to_owned());
    let mut lines = head.lines();
    let request_line = lines.next().ok_or_else(|| malformed("empty head"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| malformed("empty request line"))?;
    let target = parts.next().ok_or_else(|| malformed("missing target"))?;
    let version = parts.next().ok_or_else(|| malformed("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(malformed("not HTTP/1.x"));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| malformed("header without colon"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }
    let connection = headers
        .iter()
        .find(|(k, _)| k == "connection")
        .map(|(_, v)| v.to_ascii_lowercase());
    // HTTP/1.1 defaults to keep-alive; HTTP/1.0 to close.
    let close = match connection.as_deref() {
        Some("close") => true,
        Some(v) if v.contains("keep-alive") => false,
        _ => version != "HTTP/1.1",
    };
    // The service's endpoints carry no bodies; a request that announces
    // one would desynchronize the head parser, so reject it outright.
    if let Some((_, v)) = headers.iter().find(|(k, _)| k == "content-length") {
        if v.parse::<u64>().map_or(true, |n| n > 0) {
            return Err(malformed("request bodies are not accepted"));
        }
    }
    let (path, query_raw) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = query_raw
        .split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect();
    Ok(Request {
        method: method.to_uppercase(),
        path: percent_decode(path),
        query,
        raw_target: target.to_owned(),
        headers,
        close,
    })
}

/// A per-connection read buffer: bytes arrive in whatever chunks the
/// socket delivers, complete request heads parse out one at a time.
#[derive(Debug, Default)]
pub struct ConnBuffer {
    buf: Vec<u8>,
    /// Start of the first unparsed byte in `buf`.
    start: usize,
}

impl ConnBuffer {
    /// An empty buffer for a fresh connection.
    pub fn new() -> ConnBuffer {
        ConnBuffer::default()
    }

    /// Reads more bytes from `stream` into the buffer. `Ok(0)` is EOF.
    pub fn fill(&mut self, stream: &mut impl Read) -> std::io::Result<usize> {
        // Reclaim fully parsed bytes before growing.
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk)?;
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(n)
    }

    /// Unparsed bytes currently buffered — nonzero after a parse means
    /// more pipelined requests may already be waiting.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Attempts to parse the next request head out of the buffer.
    /// `Ok(None)` means incomplete: call [`ConnBuffer::fill`] and retry.
    /// A [`ParseError::Malformed`] head has still been consumed, so the
    /// caller can answer `400` and keep parsing.
    pub fn next_request(&mut self) -> Result<Option<Request>, ParseError> {
        let pending = &self.buf[self.start..];
        // Tolerate stray blank lines between pipelined requests.
        let skip = pending
            .iter()
            .take_while(|&&b| b == b'\r' || b == b'\n')
            .count();
        self.start += skip;
        let pending = &self.buf[self.start..];
        if pending.is_empty() {
            return Ok(None);
        }
        let Some(end) = head_end(pending, 0) else {
            if pending.len() >= MAX_HEAD_BYTES {
                return Err(ParseError::TooLarge);
            }
            return Ok(None);
        };
        let head = String::from_utf8_lossy(&pending[..end]).into_owned();
        self.start += end;
        parse_head(&head).map(Some)
    }
}

/// Parses exactly one request from `stream` (blocking until the head
/// completes). The convenience form for single-shot paths: the accept
/// thread's shed-with-503 answer, and unit tests.
pub fn read_request(stream: &mut impl Read) -> std::io::Result<Request> {
    let invalid = |what: String| std::io::Error::new(std::io::ErrorKind::InvalidData, what);
    let mut buf = ConnBuffer::new();
    loop {
        match buf.next_request() {
            Ok(Some(request)) => return Ok(request),
            Ok(None) => {
                if buf.fill(stream)? == 0 {
                    return Err(invalid("truncated request head".into()));
                }
            }
            Err(ParseError::Malformed(what)) => {
                return Err(invalid(format!("malformed request: {what}")))
            }
            Err(ParseError::TooLarge) => return Err(invalid("request head too large".into())),
        }
    }
}

/// Reason phrase for the status codes the service emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Writes one complete response with an exact `Content-Length` and an
/// explicit connection disposition. Pipelined responses are written
/// back-to-back into one buffer and flushed together.
pub fn respond_conn(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    respond_conn_ext(stream, status, content_type, body, keep_alive, &[])
}

/// [`respond_conn`] with extra response headers (the tracing layer's
/// span-export header). With an empty `extra` the wire bytes are
/// identical to [`respond_conn`]'s, by construction — the extra lines
/// are spliced in before the blank line and nothing else changes.
pub fn respond_conn_ext(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &str,
    keep_alive: bool,
    extra: &[(String, String)],
) -> std::io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: {connection}\r\n",
        reason(status),
        body.len(),
    )?;
    for (name, value) in extra {
        write!(stream, "{name}: {value}\r\n")?;
    }
    write!(stream, "\r\n{body}")?;
    stream.flush()
}

/// Writes one complete `Connection: close` response.
pub fn respond(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    respond_conn(stream, status, content_type, body, false)
}

/// Writes one `GET` request; `keep_alive` selects the connection
/// disposition, `headers` adds extra `Name: value` lines (the cluster's
/// hop marker). Does not flush — callers pipeline several requests and
/// flush once.
pub fn write_get_conn(
    stream: &mut impl Write,
    target: &str,
    keep_alive: bool,
    headers: &[(&str, &str)],
) -> std::io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    write!(stream, "GET {target} HTTP/1.1\r\nHost: localhost\r\n")?;
    for (name, value) in headers {
        write!(stream, "{name}: {value}\r\n")?;
    }
    write!(stream, "Connection: {connection}\r\n\r\n")
}

/// Writes and flushes one minimal `Connection: close` `GET`.
pub fn write_get(stream: &mut impl Write, target: &str) -> std::io::Result<()> {
    write_get_conn(stream, target, false, &[])?;
    stream.flush()
}

/// One parsed response off a keep-alive connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code from the status line.
    pub status: u16,
    /// Whether the server announced `Connection: close`.
    pub close: bool,
    /// Header names (lowercased) and trimmed values, arrival order.
    pub headers: Vec<(String, String)>,
    /// The exact `Content-Length` body.
    pub body: String,
}

impl Response {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A client-side keep-alive connection: send one or many pipelined
/// `GET`s, then read the same number of `Content-Length`-framed
/// responses back in order.
#[derive(Debug)]
pub struct ClientConn {
    stream: TcpStream,
    buf: Vec<u8>,
    start: usize,
}

impl ClientConn {
    /// Connects with sane loopback timeouts.
    pub fn connect(addr: SocketAddr) -> std::io::Result<ClientConn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        stream.set_write_timeout(Some(Duration::from_secs(60)))?;
        Ok(ClientConn {
            stream,
            buf: Vec::new(),
            start: 0,
        })
    }

    /// Wraps an already-connected stream (a pooled upstream).
    pub fn from_stream(stream: TcpStream) -> ClientConn {
        ClientConn {
            stream,
            buf: Vec::new(),
            start: 0,
        }
    }

    /// Queues one keep-alive `GET` without flushing; follow with more
    /// sends to pipeline, then [`ClientConn::flush`].
    pub fn send(&mut self, target: &str, headers: &[(&str, &str)]) -> std::io::Result<()> {
        write_get_conn(&mut self.stream, target, true, headers)
    }

    /// Flushes queued requests to the wire.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.stream.flush()
    }

    /// Reads one complete response (head + exact-length body).
    pub fn recv(&mut self) -> std::io::Result<Response> {
        let malformed =
            |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_owned());
        // Buffer until the head terminates.
        let end = loop {
            if let Some(end) = head_end(&self.buf[self.start..], 0) {
                break end;
            }
            if self.start > 0 {
                self.buf.drain(..self.start);
                self.start = 0;
            }
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(malformed("connection closed mid-response"));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8_lossy(&self.buf[self.start..self.start + end]).into_owned();
        self.start += end;
        let mut lines = head.lines();
        let status_line = lines.next().ok_or_else(|| malformed("empty response"))?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| malformed("bad status line"))?;
        let mut content_length: Option<usize> = None;
        let mut close = false;
        let mut headers = Vec::new();
        for line in lines {
            if line.is_empty() {
                break;
            }
            let Some((name, value)) = line.split_once(':') else {
                continue;
            };
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim();
            if name == "content-length" {
                content_length = value.parse().ok();
            } else if name == "connection" {
                close = value.eq_ignore_ascii_case("close");
            }
            headers.push((name, value.to_owned()));
        }
        let len = content_length.ok_or_else(|| malformed("response without Content-Length"))?;
        // Buffer until the whole body is in.
        while self.buf.len() - self.start < len {
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(malformed("connection closed mid-body"));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
        let body = String::from_utf8_lossy(&self.buf[self.start..self.start + len]).into_owned();
        self.start += len;
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
        Ok(Response {
            status,
            close,
            headers,
            body,
        })
    }

    /// One request-response round trip on the persistent connection.
    pub fn get(&mut self, target: &str) -> std::io::Result<(u16, String)> {
        self.send(target, &[])?;
        self.flush()?;
        let response = self.recv()?;
        Ok((response.status, response.body))
    }
}

/// One blocking loopback GET: connect, request, read to EOF. Returns
/// `(status, body)`. The close-per-request client half used by tests
/// and the serve benchmark's baseline load generator.
pub fn get(addr: SocketAddr, target: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    stream.set_write_timeout(Some(Duration::from_secs(60)))?;
    write_get(&mut stream, target)?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let malformed = || std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response");
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(malformed)?;
    let body = raw
        .split("\r\n\r\n")
        .nth(1)
        .ok_or_else(malformed)?
        .to_owned();
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &str) -> std::io::Result<Request> {
        read_request(&mut raw.as_bytes())
    }

    #[test]
    fn parses_path_query_and_method() {
        let r = parse("GET /eval?workload=tonto&tech=Jan_S HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/eval");
        assert_eq!(r.raw_target, "/eval?workload=tonto&tech=Jan_S");
        assert_eq!(r.param("workload"), Some("tonto"));
        assert_eq!(r.param("tech"), Some("Jan_S"));
        assert_eq!(r.param("absent"), None);
        assert_eq!(r.header("host"), Some("x"));
        assert!(!r.close, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn decodes_percent_escapes_and_plus() {
        let r = parse("GET /x?a=b%20c&d=e+f&bad=%zz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.param("a"), Some("b c"));
        assert_eq!(r.param("d"), Some("e f"));
        assert_eq!(r.param("bad"), Some("%zz"), "invalid escape passes through");
    }

    #[test]
    fn connection_disposition_follows_version_and_header() {
        assert!(!parse("GET / HTTP/1.1\r\n\r\n").unwrap().close);
        assert!(
            parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
                .unwrap()
                .close
        );
        assert!(parse("GET / HTTP/1.0\r\n\r\n").unwrap().close);
        assert!(
            !parse("GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n")
                .unwrap()
                .close
        );
    }

    #[test]
    fn malformed_requests_error_cleanly() {
        assert!(parse("\r\n\r\n").is_err());
        assert!(parse("GET /x\r\n\r\n").is_err(), "missing version");
        assert!(parse("GET /x SMTP/1.0\r\n\r\n").is_err(), "wrong protocol");
        assert!(
            parse("GET /x HTTP/1.1\r\nHost: y\r\n").is_err(),
            "no blank line"
        );
        assert!(
            parse("GET /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello").is_err(),
            "bodies are rejected"
        );
    }

    #[test]
    fn conn_buffer_parses_pipelined_requests_from_one_segment() {
        let mut buf = ConnBuffer::new();
        let raw =
            "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nHost: x\r\n\r\nGET /c HTTP/1.1\r\n\r\n";
        assert_eq!(buf.fill(&mut raw.as_bytes()).unwrap(), raw.len());
        let paths: Vec<String> =
            std::iter::from_fn(|| buf.next_request().unwrap().map(|r| r.path)).collect();
        assert_eq!(paths, ["/a", "/b", "/c"]);
        assert_eq!(buf.buffered(), 0);
    }

    #[test]
    fn conn_buffer_handles_heads_split_across_reads() {
        let mut buf = ConnBuffer::new();
        let part1 = "GET /eval?work";
        let part2 = "load=tonto HTTP/1.1\r\nHo";
        let part3 = "st: x\r\n\r\n";
        buf.fill(&mut part1.as_bytes()).unwrap();
        assert!(buf.next_request().unwrap().is_none(), "head incomplete");
        buf.fill(&mut part2.as_bytes()).unwrap();
        assert!(buf.next_request().unwrap().is_none(), "still incomplete");
        buf.fill(&mut part3.as_bytes()).unwrap();
        let r = buf.next_request().unwrap().expect("complete now");
        assert_eq!(r.path, "/eval");
        assert_eq!(r.param("workload"), Some("tonto"));
    }

    #[test]
    fn conn_buffer_consumes_malformed_heads_and_recovers() {
        let mut buf = ConnBuffer::new();
        let raw = "BOGUS\r\n\r\nGET /ok HTTP/1.1\r\n\r\n";
        buf.fill(&mut raw.as_bytes()).unwrap();
        assert!(matches!(buf.next_request(), Err(ParseError::Malformed(_))));
        // The bad head was consumed; the next pipelined request parses.
        let r = buf
            .next_request()
            .unwrap()
            .expect("request after the bad one");
        assert_eq!(r.path, "/ok");
    }

    #[test]
    fn conn_buffer_rejects_unterminated_oversized_heads() {
        let mut buf = ConnBuffer::new();
        let huge = format!(
            "GET / HTTP/1.1\r\nX-Pad: {}\r\n",
            "y".repeat(MAX_HEAD_BYTES)
        );
        buf.fill(&mut huge.as_bytes()).unwrap();
        while buf.buffered() < MAX_HEAD_BYTES {
            if buf.fill(&mut huge.as_bytes()).unwrap() == 0 {
                break;
            }
        }
        assert_eq!(buf.next_request(), Err(ParseError::TooLarge));
    }

    #[test]
    fn response_carries_exact_content_length() {
        let mut out = Vec::new();
        respond(&mut out, 200, "application/json", "{\"ok\":true}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
        let mut out = Vec::new();
        respond(&mut out, 429, "text/plain", "busy").unwrap();
        assert!(String::from_utf8(out)
            .unwrap()
            .contains("429 Too Many Requests"));
        let mut out = Vec::new();
        respond_conn(&mut out, 200, "text/plain", "ok", true).unwrap();
        assert!(String::from_utf8(out)
            .unwrap()
            .contains("Connection: keep-alive\r\n"));
    }

    #[test]
    fn status_431_has_its_reason_phrase() {
        let mut out = Vec::new();
        respond(&mut out, 431, "text/plain", "too big").unwrap();
        assert!(String::from_utf8(out)
            .unwrap()
            .starts_with("HTTP/1.1 431 Request Header Fields Too Large\r\n"));
    }
}
