//! JSON rendering of evaluation results, **bit-exact by construction**.
//!
//! Floats render with `{:?}` — Rust's shortest-round-trip formatting —
//! so parsing a rendered number yields the identical `f64` bit pattern.
//! That makes these renderers the service's canonical wire form: a
//! response body compares byte-for-byte against the same result
//! rendered locally, which is how the integration tests pin the
//! server's answers to `Evaluator::run_all`'s.

use nvm_llc_sim::{EnduranceReport, MatrixEntry, MatrixRow, SimResult, SimStats};

/// Shortest-round-trip float rendering (`1.0`, not `1`): injective on
/// finite values, so byte equality implies bit equality.
pub fn f64_repr(v: f64) -> String {
    format!("{v:?}")
}

/// Escapes a string for a JSON literal.
fn escaped(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn render_stats(s: &SimStats) -> String {
    format!(
        "{{\"instructions\":{},\"accesses\":{},\"l1d_hits\":{},\"l1d_misses\":{},\
         \"l2_hits\":{},\"l2_misses\":{},\"llc_hits\":{},\"llc_misses\":{},\
         \"llc_writes\":{},\"llc_fills\":{},\"dram_writebacks\":{},\
         \"llc_port_stall_cycles\":{},\"dram_row_hits\":{},\"dram_row_conflicts\":{},\
         \"dram_queue_cycles\":{},\"llc_bypassed_fills\":{},\"prefetches\":{},\
         \"inclusion_invalidations\":{}}}",
        s.instructions,
        s.accesses,
        s.l1d_hits,
        s.l1d_misses,
        s.l2_hits,
        s.l2_misses,
        s.llc_hits,
        s.llc_misses,
        s.llc_writes,
        s.llc_fills,
        s.dram_writebacks,
        s.llc_port_stall_cycles,
        s.dram_row_hits,
        s.dram_row_conflicts,
        s.dram_queue_cycles,
        s.llc_bypassed_fills,
        s.prefetches,
        s.inclusion_invalidations,
    )
}

fn render_endurance(e: &EnduranceReport) -> String {
    format!(
        "{{\"class\":\"{:?}\",\"total_writes\":{},\"max_set_writes\":{},\
         \"mean_set_writes\":{},\"worst_cell_write_rate_hz\":{},\"lifetime_years\":{}}}",
        e.class,
        e.total_writes,
        e.max_set_writes,
        f64_repr(e.mean_set_writes),
        f64_repr(e.worst_cell_write_rate_hz),
        f64_repr(e.lifetime_years),
    )
}

/// One raw simulation result.
pub fn render_result(r: &SimResult) -> String {
    format!(
        "{{\"llc_name\":\"{}\",\"exec_time_s\":{},\"llc_dynamic_energy_j\":{},\
         \"llc_leakage_energy_j\":{},\"endurance\":{},\"stats\":{}}}",
        escaped(&r.llc_name),
        f64_repr(r.exec_time.value()),
        f64_repr(r.llc_dynamic_energy.value()),
        f64_repr(r.llc_leakage_energy.value()),
        r.endurance
            .as_ref()
            .map_or_else(|| "null".to_owned(), render_endurance),
        render_stats(&r.stats),
    )
}

/// One technology's normalized entry.
pub fn render_entry(e: &MatrixEntry) -> String {
    format!(
        "{{\"llc\":\"{}\",\"speedup\":{},\"energy\":{},\"ed2p\":{},\"result\":{}}}",
        escaped(&e.llc),
        f64_repr(e.speedup),
        f64_repr(e.energy),
        f64_repr(e.ed2p),
        render_result(&e.result),
    )
}

/// A full matrix row: workload, baseline, every technology entry.
pub fn render_row(row: &MatrixRow) -> String {
    let entries: Vec<String> = row.entries.iter().map(render_entry).collect();
    format!(
        "{{\"workload\":\"{}\",\"baseline\":{},\"entries\":[{}]}}",
        escaped(&row.workload),
        render_result(&row.baseline),
        entries.join(","),
    )
}

/// A single-cell `/eval` response: the workload plus one entry.
pub fn render_cell(workload: &str, entry: &MatrixEntry) -> String {
    format!(
        "{{\"workload\":\"{}\",\"entry\":{}}}",
        escaped(workload),
        render_entry(entry),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_llc_circuit::reference;
    use nvm_llc_sim::Evaluator;
    use nvm_llc_trace::workloads;

    #[test]
    fn float_repr_round_trips_bit_exactly() {
        for v in [0.1, 1.0, 1e-300, 123.456e7, f64::MIN_POSITIVE, -0.0] {
            let parsed: f64 = f64_repr(v).parse().unwrap();
            assert_eq!(parsed.to_bits(), v.to_bits(), "{v}");
        }
    }

    #[test]
    fn escaping_covers_quotes_and_controls() {
        assert_eq!(escaped("a\"b\\c\nd"), "a\\\"b\\\\c\\u000ad");
    }

    #[test]
    fn rendered_row_is_deterministic_and_complete() {
        let models = reference::fixed_capacity();
        let baseline = reference::by_name(&models, "SRAM").unwrap();
        let nvms: Vec<_> = models.into_iter().filter(|m| m.name != "SRAM").collect();
        let run = || {
            Evaluator::new(baseline.clone(), nvms.clone())
                .base_accesses(2_000)
                .run_workload(&workloads::by_name("tonto").unwrap())
        };
        let a = render_row(&run());
        let b = render_row(&run());
        assert_eq!(a, b, "equal inputs render to identical bytes");
        assert!(a.starts_with("{\"workload\":\"tonto\""));
        assert_eq!(a.matches("\"llc\":").count(), 10, "all ten NVMs render");
        assert!(a.contains("\"exec_time_s\":"));
        assert!(a.contains("\"endurance\":null"));
    }
}
