//! Pooled keep-alive upstream connections.
//!
//! A [`Pool`] holds idle [`http::ClientConn`]s to one upstream address.
//! [`Pool::get`] checks one out (or dials a fresh connection), runs a
//! single request-response round trip, and returns the connection to
//! the pool when the upstream kept it alive. A request that fails on a
//! *reused* connection is retried once on a fresh one — the idle
//! connection may simply have been closed by the upstream's
//! max-requests or idle-timeout policy, which is not an upstream
//! failure.
//!
//! The router and the shard-to-shard proxy path both sit on this: each
//! peer gets one `Pool`, so steady-state forwarding costs zero TCP
//! handshakes.

use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Mutex;
use std::time::Duration;

use crate::http::ClientConn;

/// Upper bound on idle connections retained per upstream; extras are
/// dropped (closed) on check-in.
const MAX_IDLE: usize = 16;

/// Dial/IO timeout for one upstream hop — proxying must fail fast
/// enough that the local fallback still answers a patient client.
const UPSTREAM_TIMEOUT: Duration = Duration::from_secs(10);

/// A keep-alive connection pool to one upstream `host:port`.
#[derive(Debug)]
pub struct Pool {
    addr: String,
    idle: Mutex<Vec<ClientConn>>,
}

impl Pool {
    /// A pool for `addr` (nothing is dialed until the first request).
    pub fn new(addr: impl Into<String>) -> Pool {
        Pool {
            addr: addr.into(),
            idle: Mutex::new(Vec::new()),
        }
    }

    /// The upstream address this pool dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Idle connections currently parked (for stats).
    pub fn idle(&self) -> usize {
        self.idle.lock().expect("pool lock").len()
    }

    fn resolve(&self) -> io::Result<SocketAddr> {
        self.addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "upstream did not resolve"))
    }

    fn dial(&self) -> io::Result<ClientConn> {
        let stream = TcpStream::connect_timeout(&self.resolve()?, UPSTREAM_TIMEOUT)?;
        stream.set_read_timeout(Some(UPSTREAM_TIMEOUT))?;
        stream.set_write_timeout(Some(UPSTREAM_TIMEOUT))?;
        stream.set_nodelay(true).ok();
        Ok(ClientConn::from_stream(stream))
    }

    fn check_out(&self) -> Option<ClientConn> {
        self.idle.lock().expect("pool lock").pop()
    }

    fn check_in(&self, conn: ClientConn) {
        let mut idle = self.idle.lock().expect("pool lock");
        if idle.len() < MAX_IDLE {
            idle.push(conn);
        }
    }

    fn round_trip(
        &self,
        conn: &mut ClientConn,
        target: &str,
        headers: &[(&str, &str)],
    ) -> io::Result<crate::http::Response> {
        conn.send(target, headers)?;
        conn.flush()?;
        conn.recv()
    }

    /// One `GET target` round trip over a pooled connection, returning
    /// the full parsed response (status, headers, body). Reused
    /// connections that fail retry once on a fresh dial; only the fresh
    /// connection's error propagates (a genuinely down upstream).
    pub fn request(
        &self,
        target: &str,
        headers: &[(&str, &str)],
    ) -> io::Result<crate::http::Response> {
        if let Some(mut conn) = self.check_out() {
            match self.round_trip(&mut conn, target, headers) {
                Ok(response) => {
                    if !response.close {
                        self.check_in(conn);
                    }
                    return Ok(response);
                }
                Err(_) => {
                    // Stale idle connection; fall through to a fresh dial.
                }
            }
        }
        let mut conn = self.dial()?;
        let response = self.round_trip(&mut conn, target, headers)?;
        if !response.close {
            self.check_in(conn);
        }
        Ok(response)
    }

    /// [`Pool::request`] reduced to `(status, body)` — the common
    /// proxying shape.
    pub fn get(&self, target: &str, headers: &[(&str, &str)]) -> io::Result<(u16, String)> {
        let response = self.request(target, headers)?;
        Ok((response.status, response.body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::TcpListener;

    /// A tiny single-threaded upstream: answers `n` keep-alive requests
    /// per connection, then closes.
    fn upstream(max_per_conn: usize) -> (SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { break };
                for served in 1..=max_per_conn {
                    let mut buf = crate::http::ConnBuffer::new();
                    let request = loop {
                        match buf.next_request() {
                            Ok(Some(r)) => break Some(r),
                            Ok(None) => match buf.fill(&mut stream) {
                                Ok(0) | Err(_) => break None,
                                Ok(_) => {}
                            },
                            Err(_) => break None,
                        }
                    };
                    let Some(request) = request else { break };
                    if request.path == "/quit" {
                        return;
                    }
                    let keep = served < max_per_conn && !request.close;
                    let body = format!("pong:{}", request.raw_target);
                    crate::http::respond_conn(&mut stream, 200, "text/plain", &body, keep).unwrap();
                    stream.flush().unwrap();
                    if !keep {
                        break;
                    }
                }
            }
        });
        (addr, handle)
    }

    #[test]
    fn pool_reuses_connections_and_recovers_from_upstream_close() {
        let (addr, handle) = upstream(3);
        let pool = Pool::new(addr.to_string());
        // Seven requests over a 3-requests-per-connection upstream:
        // every one must succeed, transparently re-dialing as needed.
        for i in 0..7 {
            let (status, body) = pool.get(&format!("/r{i}"), &[]).unwrap();
            assert_eq!(status, 200);
            assert_eq!(body, format!("pong:/r{i}"));
        }
        assert!(pool.idle() <= 1, "at most the live connection is parked");
        let _ = pool.get("/quit", &[]);
        handle.join().unwrap();
    }

    #[test]
    fn pool_propagates_a_dead_upstream() {
        // Bind then drop: nothing listens there afterwards.
        let addr = TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap();
        let pool = Pool::new(addr.to_string());
        assert!(pool.get("/x", &[]).is_err());
    }
}
