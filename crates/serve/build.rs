//! Bakes the git commit into the daemon's `/statsz` build info.
//!
//! Resolution order:
//!
//! 1. `NVM_LLC_GIT_HASH` in the build environment — CI exports the
//!    exact commit it checked out, which wins over anything the local
//!    work tree says (e.g. builds from an exported source tarball that
//!    happens to sit inside an unrelated repository).
//! 2. `git rev-parse --short HEAD` — developer builds from a clone get
//!    the real commit instead of the old `unknown` placeholder.
//! 3. `"unknown"` — no env var and no usable git (tarball builds).

use std::process::Command;

fn main() {
    println!("cargo:rerun-if-env-changed=NVM_LLC_GIT_HASH");
    let hash = std::env::var("NVM_LLC_GIT_HASH")
        .ok()
        .filter(|h| !h.trim().is_empty())
        .or_else(git_head_hash)
        .unwrap_or_else(|| "unknown".to_owned());
    println!("cargo:rustc-env=NVM_LLC_BUILD_GIT_HASH={hash}");
}

/// The work tree's abbreviated HEAD commit, when building from a clone.
fn git_head_hash() -> Option<String> {
    let manifest_dir = std::env::var("CARGO_MANIFEST_DIR").ok()?;
    // Rebuild when HEAD moves (new commit, branch switch). Best-effort:
    // if the git dir cannot be resolved, the hash simply goes stale
    // until the next full rebuild.
    if let Ok(out) = Command::new("git")
        .args(["rev-parse", "--git-dir"])
        .current_dir(&manifest_dir)
        .output()
    {
        if out.status.success() {
            if let Ok(git_dir) = String::from_utf8(out.stdout) {
                let git_dir = std::path::Path::new(&manifest_dir).join(git_dir.trim());
                println!("cargo:rerun-if-changed={}", git_dir.join("HEAD").display());
            }
        }
    }
    let out = Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .current_dir(&manifest_dir)
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let hash = String::from_utf8(out.stdout).ok()?;
    let hash = hash.trim();
    if hash.is_empty() {
        None
    } else {
        Some(hash.to_owned())
    }
}
