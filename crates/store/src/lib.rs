//! # nvm-llc-store — persistent content-addressed result store
//!
//! A small, std-only on-disk cache keyed by content digests: the
//! evaluation service and the CLI persist simulation results and encoded
//! outcome tapes here so that warm state survives process restarts (the
//! disk tier of the memory → disk → recompute read-through stack).
//!
//! Design points, in the order they matter:
//!
//! * **Content addressing.** A [`Key`] is a 128-bit FNV-1a digest of a
//!   caller-assembled payload describing *everything the value depends
//!   on* (trace content hash, hierarchy geometry, simulation
//!   configuration, technology parameters, and the producing crate's
//!   model version). Equal inputs map to the same file; any input change
//!   maps elsewhere. Nothing is ever updated in place.
//! * **Self-validating records.** Every file is a [`wire`]-format record:
//!   a fixed header (magic, format version, payload length, FNV-1a-64
//!   checksum) followed by the payload. [`Store::get`] re-verifies all
//!   of it and treats *any* mismatch — truncation, bit rot, a stale
//!   format — as a miss, deleting the bad file so the caller falls back
//!   to recompute and the next [`Store::put`] heals the entry.
//! * **Atomic writes.** [`Store::put`] writes a temporary file in the
//!   same directory and `rename(2)`s it into place, so concurrent
//!   readers (other threads *or other processes* sharing the directory)
//!   only ever observe absent or complete records.
//! * **Bounded residency.** Like the in-memory tape cache, the store
//!   holds an LRU byte budget (default [`DEFAULT_BUDGET_BYTES`]):
//!   inserts that push the resident total over budget evict the
//!   least-recently-fetched records.
//! * **Zero-copy warm reads.** On unix (with the default `mmap`
//!   feature), [`Store::get_mapped`] memory-maps a record, validates
//!   the header in place, and returns a [`Payload`] borrowing the
//!   payload bytes straight from the page cache — no allocation or
//!   copy proportional to record size. Everywhere else, and whenever
//!   mapping fails, the same call falls back to the owned
//!   [`Store::get`] path, so callers never branch on platform.
//!
//! The crate knows nothing about simulations: values are opaque byte
//! payloads. `nvm_llc_sim::persist` supplies the encodings and key
//! derivations.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

#[cfg(all(unix, feature = "mmap"))]
mod mmap;
pub mod wire;

#[cfg(all(unix, feature = "mmap"))]
pub use mmap::MappedPayload;

/// Process-wide store counters in the [`nvm_llc_obs`] registry.
///
/// A process can open several [`Store`]s; the per-instance
/// [`StoreStats`] stay per-instance while these aggregate across all of
/// them (the daemon opens exactly one, so there they coincide).
pub mod metrics {
    use nvm_llc_obs::metrics::{counter, gauge, Counter, Gauge};

    /// `nvmllc_store_hits_total`
    pub fn hits() -> &'static Counter {
        counter(
            "nvmllc_store_hits_total",
            "Store reads that returned a valid payload.",
        )
    }

    /// `nvmllc_store_misses_total`
    pub fn misses() -> &'static Counter {
        counter(
            "nvmllc_store_misses_total",
            "Store reads that found no usable record (corrupt included).",
        )
    }

    /// `nvmllc_store_corrupt_total`
    pub fn corrupt() -> &'static Counter {
        counter(
            "nvmllc_store_corrupt_total",
            "Records rejected by validation and deleted for recompute.",
        )
    }

    /// `nvmllc_store_insertions_total`
    pub fn insertions() -> &'static Counter {
        counter(
            "nvmllc_store_insertions_total",
            "Records written and renamed into place.",
        )
    }

    /// `nvmllc_store_evictions_total`
    pub fn evictions() -> &'static Counter {
        counter(
            "nvmllc_store_evictions_total",
            "Records deleted to stay under the byte budget.",
        )
    }

    /// `nvmllc_store_bytes_read_total`
    pub fn bytes_read() -> &'static Counter {
        counter(
            "nvmllc_store_bytes_read_total",
            "Payload bytes returned by store hits.",
        )
    }

    /// `nvmllc_store_mmap_bytes_total`
    pub fn mmap_bytes() -> &'static Counter {
        counter(
            "nvmllc_store_mmap_bytes_total",
            "Payload bytes served zero-copy from mmap-backed reads.",
        )
    }

    /// `nvmllc_store_bytes_written_total`
    pub fn bytes_written() -> &'static Counter {
        counter(
            "nvmllc_store_bytes_written_total",
            "File bytes written by store insertions (header + payload).",
        )
    }

    /// `nvmllc_store_resident_bytes`
    pub fn resident_bytes() -> &'static Gauge {
        gauge(
            "nvmllc_store_resident_bytes",
            "Record bytes currently indexed across open stores.",
        )
    }

    /// Pre-registers the store's metric inventory.
    pub fn register() {
        hits();
        misses();
        corrupt();
        insertions();
        evictions();
        bytes_read();
        mmap_bytes();
        bytes_written();
        resident_bytes();
    }
}

/// Magic bytes opening every record file.
const MAGIC: [u8; 4] = *b"NVLS";

/// On-disk record format version; bump on any layout change so old
/// records read as corrupt (→ recompute) instead of mis-decoding.
const FORMAT_VERSION: u32 = 1;

/// Record header: magic (4) + format version (4) + payload length (8) +
/// payload checksum (8).
const HEADER_BYTES: usize = 24;

/// Default residency budget: 1 GiB of records.
pub const DEFAULT_BUDGET_BYTES: u64 = 1 << 30;

/// 64-bit FNV-1a over `bytes` (the record checksum).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// 128-bit FNV-1a over `bytes` (the content-address digest).
pub fn fnv1a128(bytes: &[u8]) -> u128 {
    let mut hash = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58du128;
    for &b in bytes {
        hash ^= u128::from(b);
        hash = hash.wrapping_mul(0x0000_0000_0100_0000_0000_0000_0000_013bu128);
    }
    hash
}

/// A 128-bit content address: the digest of everything a stored value
/// depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Key(u128);

impl Key {
    /// Digests an identity payload into a key.
    pub fn digest(identity: &[u8]) -> Key {
        Key(fnv1a128(identity))
    }

    /// The key as a fixed-width lowercase hex string (the record's file
    /// stem).
    pub fn hex(&self) -> String {
        format!("{:032x}", self.0)
    }

    /// The raw 128-bit digest — the content-addressed keyspace a
    /// cluster shards over.
    pub fn as_u128(&self) -> u128 {
        self.0
    }

    /// The key folded onto a 64-bit hash ring: both halves of the
    /// digest mixed, so keys differing only in their high bits still
    /// land on distinct ring points.
    pub fn ring_point(&self) -> u64 {
        let hi = (self.0 >> 64) as u64;
        let lo = self.0 as u64;
        // Same finalizer family as splitmix64: cheap, well distributed,
        // and identical on every node — shard maps must agree.
        let mut x = hi ^ lo.rotate_left(32) ^ 0x9e37_79b9_7f4a_7c15;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    fn from_hex(stem: &str) -> Option<Key> {
        if stem.len() != 32 {
            return None;
        }
        u128::from_str_radix(stem, 16).ok().map(Key)
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.hex())
    }
}

/// Counters describing one store's traffic since it was opened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// `get` calls that returned a valid payload.
    pub hits: u64,
    /// `get` calls that found no record.
    pub misses: u64,
    /// `get` calls that found a record but rejected it (bad magic,
    /// version, length, or checksum) — counted *in addition to* a miss.
    pub corrupt: u64,
    /// Records written (after `put` renamed them into place).
    pub insertions: u64,
    /// Records deleted to stay under the byte budget.
    pub evictions: u64,
    /// Payload bytes returned by hits.
    pub bytes_read: u64,
    /// File bytes written by insertions (header + payload).
    pub bytes_written: u64,
}

impl fmt::Display for StoreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({} corrupt), {} inserted, {} evicted",
            self.hits, self.misses, self.corrupt, self.insertions, self.evictions
        )
    }
}

struct IndexEntry {
    /// Full record size on disk (header + payload).
    bytes: u64,
    /// Recency stamp from `Index::clock` (higher = fresher).
    last_used: u64,
}

struct Index {
    map: HashMap<Key, IndexEntry>,
    clock: u64,
    resident: u64,
}

/// A payload returned by [`Store::get_mapped`]: either an owned buffer
/// (the portable path) or a zero-copy view into a memory-mapped record.
///
/// Dereferences to `[u8]` either way, so decoders written against byte
/// slices work unchanged. The `Mapped` variant keeps the whole record
/// file mapped for as long as the payload is alive; callers that decode
/// and drop (the store's only use today) release the mapping
/// immediately after.
#[derive(Debug)]
pub enum Payload {
    /// Heap-allocated payload from the portable `fs::read` path.
    Owned(Vec<u8>),
    /// Zero-copy view of the payload inside a mapped record file.
    #[cfg(all(unix, feature = "mmap"))]
    Mapped(MappedPayload),
}

impl std::ops::Deref for Payload {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match self {
            Payload::Owned(bytes) => bytes,
            #[cfg(all(unix, feature = "mmap"))]
            Payload::Mapped(mapped) => mapped,
        }
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

/// A persistent content-addressed record store rooted at one directory.
///
/// All operations are `&self` and internally synchronized, so a `Store`
/// can be shared across threads behind an `Arc`. Multiple processes may
/// share a directory: writes are atomic renames and reads validate, so
/// the worst cross-process race is a redundant recompute.
pub struct Store {
    dir: PathBuf,
    budget: u64,
    index: Mutex<Index>,
    tmp_seq: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
}

impl fmt::Debug for Store {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Store")
            .field("dir", &self.dir)
            .field("budget", &self.budget)
            .finish_non_exhaustive()
    }
}

impl Store {
    /// Opens (creating if needed) a store rooted at `dir` with the
    /// default byte budget, indexing any records already present —
    /// recency seeded from file modification times, so a reopened
    /// store evicts in roughly the same order it would have.
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<Store> {
        Store::open_with_budget(dir, DEFAULT_BUDGET_BYTES)
    }

    /// [`Store::open`] with an explicit residency budget in bytes.
    pub fn open_with_budget(dir: impl AsRef<Path>, budget: u64) -> std::io::Result<Store> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        // Index surviving records, oldest-modified first so their
        // relative recency is preserved; leftover tmp files from a
        // crashed writer are swept.
        let mut found: Vec<(Key, u64, std::time::SystemTime)> = Vec::new();
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.starts_with("tmp-") {
                let _ = fs::remove_file(entry.path());
                continue;
            }
            let Some(stem) = name.strip_suffix(".rec") else {
                continue;
            };
            let Some(key) = Key::from_hex(stem) else {
                continue;
            };
            let meta = entry.metadata()?;
            let mtime = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
            found.push((key, meta.len(), mtime));
        }
        found.sort_by_key(|(_, _, mtime)| *mtime);
        let mut index = Index {
            map: HashMap::new(),
            clock: 0,
            resident: 0,
        };
        for (key, bytes, _) in found {
            index.clock += 1;
            index.resident += bytes;
            index.map.insert(
                key,
                IndexEntry {
                    bytes,
                    last_used: index.clock,
                },
            );
        }
        let store = Store {
            dir,
            budget,
            index: Mutex::new(index),
            tmp_seq: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
        };
        store.evict_over_budget(None);
        Ok(store)
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The residency budget in bytes.
    pub fn byte_budget(&self) -> u64 {
        self.budget
    }

    fn record_path(&self, key: &Key) -> PathBuf {
        self.dir.join(format!("{}.rec", key.hex()))
    }

    /// Fetches the payload stored under `key`, or `None` when absent or
    /// invalid. A record failing validation is counted in
    /// [`StoreStats::corrupt`], deleted (best-effort), and reported as a
    /// miss — the caller recomputes and may re-`put`.
    pub fn get(&self, key: &Key) -> Option<Vec<u8>> {
        let path = self.record_path(key);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                metrics::misses().inc();
                self.forget(key);
                return None;
            }
        };
        match validate_record(&bytes) {
            Some(payload) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                metrics::hits().inc();
                self.bytes_read
                    .fetch_add(payload.len() as u64, Ordering::Relaxed);
                metrics::bytes_read().add(payload.len() as u64);
                self.touch(key, bytes.len() as u64);
                Some(payload.to_vec())
            }
            None => {
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                metrics::corrupt().inc();
                metrics::misses().inc();
                nvm_llc_obs::debug!(
                    "store", "corrupt record deleted; caller will recompute";
                    "key" => key.hex(),
                    "bytes" => bytes.len(),
                );
                let _ = fs::remove_file(&path);
                self.forget(key);
                None
            }
        }
    }

    /// [`Store::get`] without the copy, where the platform allows it.
    ///
    /// On unix with the default `mmap` feature, a present record is
    /// memory-mapped, validated in place, and returned as
    /// [`Payload::Mapped`] — the payload bytes are borrowed straight
    /// from the page cache. On other platforms, with the feature off,
    /// or when the kernel refuses the mapping, the call falls back to
    /// the owned [`Store::get`] path and returns [`Payload::Owned`].
    ///
    /// Accounting matches [`Store::get`] exactly: hits/misses/corrupt
    /// counters move the same way, LRU recency is touched on hits, and
    /// a record failing validation is deleted so the caller recomputes.
    /// Mapped hits additionally count into
    /// `nvmllc_store_mmap_bytes_total`.
    pub fn get_mapped(&self, key: &Key) -> Option<Payload> {
        #[cfg(all(unix, feature = "mmap"))]
        {
            let path = self.record_path(key);
            let Ok(file) = fs::File::open(&path) else {
                self.misses.fetch_add(1, Ordering::Relaxed);
                metrics::misses().inc();
                self.forget(key);
                return None;
            };
            let len = file.metadata().map(|m| m.len()).unwrap_or(0);
            let Some(map) = mmap::Mmap::map(&file, len) else {
                // Empty file, exotic filesystem, address-space
                // exhaustion: let the owned path classify it (a
                // zero-length record fails validation there and is
                // cleaned up as corrupt).
                drop(file);
                return self.get(key).map(Payload::Owned);
            };
            match validate_record(&map) {
                Some(payload) => {
                    let payload_len = payload.len() as u64;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    metrics::hits().inc();
                    self.bytes_read.fetch_add(payload_len, Ordering::Relaxed);
                    metrics::bytes_read().add(payload_len);
                    metrics::mmap_bytes().add(payload_len);
                    self.touch(key, map.len() as u64);
                    Some(Payload::Mapped(MappedPayload::new(map)))
                }
                None => {
                    self.corrupt.fetch_add(1, Ordering::Relaxed);
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    metrics::corrupt().inc();
                    metrics::misses().inc();
                    nvm_llc_obs::debug!(
                        "store", "corrupt record deleted; caller will recompute";
                        "key" => key.hex(),
                        "bytes" => map.len(),
                    );
                    drop(map);
                    let _ = fs::remove_file(&path);
                    self.forget(key);
                    None
                }
            }
        }
        #[cfg(not(all(unix, feature = "mmap")))]
        {
            self.get(key).map(Payload::Owned)
        }
    }

    /// Persists `payload` under `key`: header + payload to a temporary
    /// sibling, then an atomic rename. Evicts least-recently-fetched
    /// records if the insert pushed residency over budget.
    pub fn put(&self, key: &Key, payload: &[u8]) -> std::io::Result<()> {
        let mut record = Vec::with_capacity(HEADER_BYTES + payload.len());
        record.extend_from_slice(&MAGIC);
        record.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        record.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        record.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        record.extend_from_slice(payload);

        let tmp = self.dir.join(format!(
            "tmp-{}-{}-{}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed),
            key.hex()
        ));
        {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(&record)?;
            file.sync_all()?;
        }
        if let Err(e) = fs::rename(&tmp, self.record_path(key)) {
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
        self.insertions.fetch_add(1, Ordering::Relaxed);
        metrics::insertions().inc();
        self.bytes_written
            .fetch_add(record.len() as u64, Ordering::Relaxed);
        metrics::bytes_written().add(record.len() as u64);
        self.touch(key, record.len() as u64);
        self.evict_over_budget(Some(key));
        Ok(())
    }

    /// Whether a record (valid or not) is currently indexed under `key`.
    pub fn contains(&self, key: &Key) -> bool {
        self.index
            .lock()
            .expect("store index")
            .map
            .contains_key(key)
    }

    /// Number of indexed records.
    pub fn len(&self) -> usize {
        self.index.lock().expect("store index").map.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total record bytes currently indexed.
    pub fn resident_bytes(&self) -> u64 {
        self.index.lock().expect("store index").resident
    }

    /// Snapshot of this store's traffic counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
        }
    }

    /// Marks `key` as just-used (inserting the index entry if the record
    /// appeared behind our back, e.g. written by another process).
    fn touch(&self, key: &Key, bytes: u64) {
        let mut guard = self.index.lock().expect("store index");
        let index = &mut *guard;
        index.clock += 1;
        let now = index.clock;
        match index.map.get_mut(key) {
            Some(entry) => {
                index.resident = index.resident - entry.bytes + bytes;
                entry.bytes = bytes;
                entry.last_used = now;
            }
            None => {
                index.resident += bytes;
                index.map.insert(
                    *key,
                    IndexEntry {
                        bytes,
                        last_used: now,
                    },
                );
            }
        }
        metrics::resident_bytes().set(index.resident);
    }

    /// Drops `key` from the index (its file is already gone or bad).
    fn forget(&self, key: &Key) {
        let mut index = self.index.lock().expect("store index");
        if let Some(entry) = index.map.remove(key) {
            index.resident -= entry.bytes;
            metrics::resident_bytes().set(index.resident);
        }
    }

    /// Deletes least-recently-fetched records until residency fits the
    /// budget, never shedding `keep` (a budget smaller than one record
    /// must not churn every insert).
    fn evict_over_budget(&self, keep: Option<&Key>) {
        loop {
            let victim = {
                let index = self.index.lock().expect("store index");
                if index.resident <= self.budget {
                    return;
                }
                index
                    .map
                    .iter()
                    .filter(|(k, _)| Some(*k) != keep)
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| *k)
            };
            let Some(key) = victim else { return };
            let _ = fs::remove_file(self.record_path(&key));
            self.forget(&key);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            metrics::evictions().inc();
        }
    }
}

/// Checks a raw record file and returns its payload slice when intact.
fn validate_record(bytes: &[u8]) -> Option<&[u8]> {
    if bytes.len() < HEADER_BYTES || bytes[..4] != MAGIC {
        return None;
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != FORMAT_VERSION {
        return None;
    }
    let len = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let checksum = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    let payload = &bytes[HEADER_BYTES..];
    if payload.len() as u64 != len || fnv1a64(payload) != checksum {
        return None;
    }
    Some(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A unique scratch directory, removed on drop.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos();
            let dir = std::env::temp_dir().join(format!(
                "nvm-llc-store-{tag}-{}-{}-{}",
                std::process::id(),
                nanos,
                SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn digest_is_deterministic_and_input_sensitive() {
        let a = Key::digest(b"hello");
        assert_eq!(a, Key::digest(b"hello"));
        assert_ne!(a, Key::digest(b"hello!"));
        assert_eq!(a.hex().len(), 32);
        assert_eq!(Key::from_hex(&a.hex()), Some(a));
    }

    #[test]
    fn put_then_get_round_trips() {
        let tmp = TempDir::new("roundtrip");
        let store = Store::open(&tmp.0).unwrap();
        let key = Key::digest(b"k1");
        assert_eq!(store.get(&key), None);
        store.put(&key, b"payload bytes").unwrap();
        assert_eq!(store.get(&key).as_deref(), Some(b"payload bytes".as_ref()));
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.corrupt), (1, 1, 0));
        assert_eq!(stats.insertions, 1);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn empty_payloads_are_valid_records() {
        let tmp = TempDir::new("empty");
        let store = Store::open(&tmp.0).unwrap();
        let key = Key::digest(b"nothing");
        store.put(&key, b"").unwrap();
        assert_eq!(store.get(&key).as_deref(), Some(b"".as_ref()));
    }

    #[test]
    fn records_survive_reopen() {
        let tmp = TempDir::new("reopen");
        let key = Key::digest(b"persisted");
        {
            let store = Store::open(&tmp.0).unwrap();
            store.put(&key, b"still here").unwrap();
        }
        let store = Store::open(&tmp.0).unwrap();
        assert_eq!(store.len(), 1);
        assert!(store.contains(&key));
        assert_eq!(store.get(&key).as_deref(), Some(b"still here".as_ref()));
    }

    #[test]
    fn truncated_record_reads_as_clean_miss() {
        let tmp = TempDir::new("truncate");
        let store = Store::open(&tmp.0).unwrap();
        let key = Key::digest(b"will truncate");
        store.put(&key, &vec![7u8; 256]).unwrap();
        // Truncate mid-payload: the length/checksum no longer match.
        let path = tmp.0.join(format!("{}.rec", key.hex()));
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert_eq!(store.get(&key), None);
        assert_eq!(store.stats().corrupt, 1);
        // The bad file was shed; a later get is a plain miss.
        assert!(!path.exists());
        assert!(!store.contains(&key));
        assert_eq!(store.get(&key), None);
        assert_eq!(store.stats().corrupt, 1);
        // And the entry heals on the next put.
        store.put(&key, b"fresh").unwrap();
        assert_eq!(store.get(&key).as_deref(), Some(b"fresh".as_ref()));
    }

    #[test]
    fn corrupted_byte_fails_the_checksum() {
        let tmp = TempDir::new("bitrot");
        let store = Store::open(&tmp.0).unwrap();
        let key = Key::digest(b"will rot");
        store.put(&key, b"some payload").unwrap();
        let path = tmp.0.join(format!("{}.rec", key.hex()));
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(store.get(&key), None);
        assert_eq!(store.stats().corrupt, 1);
    }

    #[test]
    fn wrong_magic_or_version_is_rejected() {
        let payload = b"p".to_vec();
        let mut record = Vec::new();
        record.extend_from_slice(&MAGIC);
        record.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        record.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        record.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        record.extend_from_slice(&payload);
        assert!(validate_record(&record).is_some());
        let mut bad_magic = record.clone();
        bad_magic[0] = b'X';
        assert!(validate_record(&bad_magic).is_none());
        let mut bad_version = record.clone();
        bad_version[4] = 0xFF;
        assert!(validate_record(&bad_version).is_none());
        assert!(validate_record(&record[..HEADER_BYTES - 1]).is_none());
    }

    #[test]
    fn eviction_sheds_least_recently_used_first() {
        let tmp = TempDir::new("lru");
        // Each record is 24 + 100 bytes; budget fits exactly two.
        let store = Store::open_with_budget(&tmp.0, 2 * 124).unwrap();
        let (a, b, c) = (Key::digest(b"a"), Key::digest(b"b"), Key::digest(b"c"));
        store.put(&a, &[1u8; 100]).unwrap();
        store.put(&b, &[2u8; 100]).unwrap();
        // Refresh `a`, making `b` the LRU victim when `c` arrives.
        assert!(store.get(&a).is_some());
        store.put(&c, &[3u8; 100]).unwrap();
        assert_eq!(store.stats().evictions, 1);
        assert!(store.contains(&a));
        assert!(!store.contains(&b));
        assert!(store.contains(&c));
        assert!(store.resident_bytes() <= 2 * 124);
    }

    #[test]
    fn reopen_respects_budget_and_mtime_order() {
        let tmp = TempDir::new("reopen-budget");
        let keys: Vec<Key> = (0..4).map(|i| Key::digest(&[i as u8])).collect();
        {
            let store = Store::open(&tmp.0).unwrap();
            for key in &keys {
                store.put(key, &[0u8; 100]).unwrap();
            }
        }
        // Reopen with room for two records: the two oldest go.
        let store = Store::open_with_budget(&tmp.0, 2 * 124).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.stats().evictions, 2);
    }

    #[test]
    fn tmp_files_are_swept_and_never_indexed() {
        let tmp = TempDir::new("sweep");
        fs::create_dir_all(&tmp.0).unwrap();
        fs::write(tmp.0.join("tmp-999-0-deadbeef"), b"half-written").unwrap();
        fs::write(tmp.0.join("unrelated.txt"), b"ignored").unwrap();
        let store = Store::open(&tmp.0).unwrap();
        assert_eq!(store.len(), 0);
        assert!(!tmp.0.join("tmp-999-0-deadbeef").exists());
        assert!(tmp.0.join("unrelated.txt").exists());
    }

    #[test]
    fn get_mapped_round_trips_with_get_accounting() {
        let tmp = TempDir::new("mapped");
        let store = Store::open(&tmp.0).unwrap();
        let key = Key::digest(b"mapped key");
        assert!(store.get_mapped(&key).is_none());
        store.put(&key, b"mapped payload").unwrap();
        let payload = store.get_mapped(&key).expect("warm read");
        assert_eq!(&*payload, b"mapped payload");
        assert_eq!(payload.as_ref(), b"mapped payload");
        #[cfg(all(unix, feature = "mmap"))]
        assert!(
            matches!(payload, Payload::Mapped(_)),
            "unix warm reads must take the zero-copy path: {payload:?}"
        );
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.corrupt), (1, 1, 0));
        assert_eq!(stats.bytes_read, b"mapped payload".len() as u64);
    }

    #[test]
    fn get_mapped_empty_payload_still_round_trips() {
        // A header-only record maps fine (24 bytes) and carries an
        // empty payload — the mapped slice must be empty, not an error.
        let tmp = TempDir::new("mapped-empty");
        let store = Store::open(&tmp.0).unwrap();
        let key = Key::digest(b"mapped nothing");
        store.put(&key, b"").unwrap();
        let payload = store.get_mapped(&key).expect("warm read");
        assert_eq!(&*payload, b"");
    }

    #[test]
    fn truncated_mapped_record_falls_back_to_clean_recompute() {
        let tmp = TempDir::new("mapped-truncate");
        let store = Store::open(&tmp.0).unwrap();
        let key = Key::digest(b"mapped will truncate");
        store.put(&key, &vec![9u8; 512]).unwrap();
        let path = tmp.0.join(format!("{}.rec", key.hex()));
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() / 3]).unwrap();
        // The mapped read rejects the record, deletes it, and reports a
        // clean miss, so the caller recomputes...
        assert_eq!(store.get_mapped(&key).map(|p| p.to_vec()), None);
        assert_eq!(store.stats().corrupt, 1);
        assert!(!path.exists());
        assert!(!store.contains(&key));
        // ...and the recomputed put heals the entry for mapped reads.
        store.put(&key, b"recomputed").unwrap();
        let healed = store.get_mapped(&key).expect("healed record");
        assert_eq!(&*healed, b"recomputed");
    }

    #[test]
    fn zero_length_record_file_is_classified_corrupt_by_get_mapped() {
        // An empty *file* (not an empty payload) cannot be mapped; the
        // fallback path must still classify and shed it.
        let tmp = TempDir::new("mapped-zero");
        let store = Store::open(&tmp.0).unwrap();
        let key = Key::digest(b"zero-length file");
        let path = tmp.0.join(format!("{}.rec", key.hex()));
        fs::write(&path, b"").unwrap();
        assert!(store.get_mapped(&key).is_none());
        assert_eq!(store.stats().corrupt, 1);
        assert!(!path.exists());
    }

    #[test]
    fn stats_display_is_informative() {
        let s = StoreStats {
            hits: 3,
            misses: 2,
            corrupt: 1,
            ..StoreStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("3 hits"));
        assert!(text.contains("1 corrupt"));
    }
}
