//! Read-only memory mapping for record files (unix fast path).
//!
//! The store's warm reads used to copy every record through a `Vec`:
//! `fs::read` allocates payload-sized buffers just so the caller can
//! decode and drop them. Mapping the record instead lets validation and
//! decoding run directly over the page cache — zero copies, no
//! allocation proportional to record size.
//!
//! `std` exposes no mapping API and this workspace vendors no platform
//! crates, so the module carries a minimal `extern "C"` surface over
//! `mmap(2)`/`munmap(2)` wrapped in an RAII [`Mmap`]. It is gated to
//! `cfg(unix)` + the `mmap` cargo feature; every other configuration
//! uses the portable owned-buffer path ([`crate::Store::get`]).
//!
//! ## Why the mapping stays valid
//!
//! A mapped file that shrinks under the reader turns page faults into
//! `SIGBUS`, so this is only sound because the store never truncates a
//! record in place: writers replace records via `rename(2)` (the mapped
//! inode lives on until unmapped) and eviction unlinks whole files
//! (likewise). External tampering with the store directory is outside
//! the design's fault model — the same caveat the checksum validation
//! in [`crate::Store::get`] already carries.

use std::fs::File;
use std::ops::Deref;
use std::os::unix::io::AsRawFd;

/// `PROT_READ` on every supported unix.
const PROT_READ: i32 = 1;
/// `MAP_PRIVATE` on every supported unix.
const MAP_PRIVATE: i32 = 2;

extern "C" {
    fn mmap(
        addr: *mut core::ffi::c_void,
        len: usize,
        prot: i32,
        flags: i32,
        fd: i32,
        offset: i64,
    ) -> *mut core::ffi::c_void;
    fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
}

/// A read-only, private mapping of an entire file.
///
/// Dereferences to the mapped bytes; unmaps on drop.
pub struct Mmap {
    ptr: std::ptr::NonNull<core::ffi::c_void>,
    len: usize,
}

// A PROT_READ/MAP_PRIVATE mapping is plain immutable memory: sharing
// references across threads is as safe as sharing `&[u8]`.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps all `len` bytes of `file` read-only, or `None` when the file
    /// is empty (zero-length mappings are invalid) or the kernel refuses
    /// (e.g. a filesystem without mmap support) — callers fall back to
    /// the owned read path.
    pub fn map(file: &File, len: u64) -> Option<Mmap> {
        if len == 0 || usize::try_from(len).is_err() {
            return None;
        }
        let len = len as usize;
        // SAFETY: requesting a fresh PROT_READ/MAP_PRIVATE mapping of a
        // file descriptor we own; the kernel validates the rest and
        // reports failure as MAP_FAILED (-1).
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return None;
        }
        Some(Mmap {
            ptr: std::ptr::NonNull::new(ptr)?,
            len,
        })
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        // SAFETY: the mapping covers `len` readable bytes and lives
        // until `Drop`; `&self` borrows tie every slice to that
        // lifetime.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr().cast::<u8>(), self.len) }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        // SAFETY: unmapping exactly the region `map` established.
        unsafe {
            let _ = munmap(self.ptr.as_ptr(), self.len);
        }
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap").field("len", &self.len).finish()
    }
}

/// A validated record mapping that dereferences to the payload bytes
/// (the record minus its fixed header).
#[derive(Debug)]
pub struct MappedPayload {
    map: Mmap,
}

impl MappedPayload {
    /// Wraps a mapping whose record already passed validation.
    pub(crate) fn new(map: Mmap) -> MappedPayload {
        debug_assert!(map.len >= crate::HEADER_BYTES);
        MappedPayload { map }
    }
}

impl Deref for MappedPayload {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.map[crate::HEADER_BYTES..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn maps_file_contents_and_rejects_empty() {
        let dir = std::env::temp_dir().join(format!(
            "nvm-llc-mmap-test-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data");
        {
            let mut f = File::create(&path).unwrap();
            f.write_all(b"mapped bytes").unwrap();
        }
        let file = File::open(&path).unwrap();
        let len = file.metadata().unwrap().len();
        let map = Mmap::map(&file, len).unwrap();
        assert_eq!(&*map, b"mapped bytes");

        let empty_path = dir.join("empty");
        File::create(&empty_path).unwrap();
        let empty = File::open(&empty_path).unwrap();
        assert!(Mmap::map(&empty, 0).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
