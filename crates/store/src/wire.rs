//! Minimal binary wire format for store payloads and key identities.
//!
//! Fixed-width little-endian integers, `f64` as raw IEEE-754 bits (so a
//! decoded value is **bit-identical** to the encoded one — the store's
//! contract is that a disk hit reproduces the computed result exactly),
//! and length-prefixed byte strings. Decoding is total: every read
//! returns `Err(WireError)` instead of panicking on truncated or
//! malformed input, because payloads come from disk and disk lies.

use std::fmt;

/// Decode failure: the payload does not match the expected layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireError;

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("malformed wire payload")
    }
}

impl std::error::Error for WireError {}

/// Append-only encoder.
#[derive(Debug, Default)]
pub struct Writer {
    bytes: Vec<u8>,
}

impl Writer {
    /// A fresh, empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.bytes.push(v);
        self
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.bytes.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.bytes.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a little-endian `u128`.
    pub fn u128(&mut self, v: u128) -> &mut Self {
        self.bytes.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends an `f64` as its raw bit pattern (bit-exact round trip).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }

    /// Appends a `bool` as one byte.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.u8(u8::from(v))
    }

    /// Appends a `u64`-length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u64(v.len() as u64);
        self.bytes.extend_from_slice(v);
        self
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) -> &mut Self {
        self.bytes(v.as_bytes())
    }
}

/// Sequential decoder over an encoded payload.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts decoding at the front of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    /// Whether every byte has been consumed — decoders should end with
    /// this to reject trailing garbage.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.bytes.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError)?;
        let slice = self.bytes.get(self.pos..end).ok_or(WireError)?;
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u128`.
    pub fn u128(&mut self) -> Result<u128, WireError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// Reads an `f64` from its raw bit pattern.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `bool`; any byte other than 0/1 is malformed.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError),
        }
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = usize::try_from(self.u64()?).map_err(|_| WireError)?;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, WireError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| WireError)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_type_round_trips() {
        let mut w = Writer::new();
        w.u8(7)
            .u32(0xDEAD_BEEF)
            .u64(u64::MAX)
            .u128(u128::MAX - 1)
            .f64(-0.1)
            .bool(true)
            .bool(false)
            .str("naïve ✓")
            .bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8(), Ok(7));
        assert_eq!(r.u32(), Ok(0xDEAD_BEEF));
        assert_eq!(r.u64(), Ok(u64::MAX));
        assert_eq!(r.u128(), Ok(u128::MAX - 1));
        assert_eq!(r.f64().map(f64::to_bits), Ok((-0.1f64).to_bits()));
        assert_eq!(r.bool(), Ok(true));
        assert_eq!(r.bool(), Ok(false));
        assert_eq!(r.str(), Ok("naïve ✓"));
        assert_eq!(r.bytes(), Ok([1, 2, 3].as_ref()));
        assert!(r.is_exhausted());
    }

    #[test]
    fn nan_bits_survive_exactly() {
        let weird = f64::from_bits(0x7FF8_0000_0000_1234);
        let mut w = Writer::new();
        w.f64(weird);
        let bytes = w.into_bytes();
        let got = Reader::new(&bytes).f64().unwrap();
        assert_eq!(got.to_bits(), weird.to_bits());
    }

    #[test]
    fn truncated_reads_error_instead_of_panicking() {
        let mut r = Reader::new(&[1, 2]);
        assert_eq!(r.u32(), Err(WireError));
        let mut w = Writer::new();
        w.str("long string");
        let bytes = w.into_bytes();
        // Chop the string body: the length prefix now overruns.
        let mut r = Reader::new(&bytes[..bytes.len() - 3]);
        assert_eq!(r.str(), Err(WireError));
    }

    #[test]
    fn bad_bool_and_bad_utf8_are_malformed() {
        assert_eq!(Reader::new(&[2]).bool(), Err(WireError));
        let mut w = Writer::new();
        w.bytes(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        assert_eq!(Reader::new(&bytes).str(), Err(WireError));
    }
}
