//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no cargo registry, so the workspace vendors the
//! slice of criterion 0.5 the bench targets use: `Criterion` with
//! `sample_size`, `bench_function`, and `benchmark_group`; groups with
//! `sample_size`/`throughput`/`bench_function`/`finish`; `Bencher::iter`;
//! `Throughput`; `black_box`; and the named-field `criterion_group!` form
//! plus `criterion_main!`.
//!
//! Statistics are deliberately simple — per-sample wall-clock means with a
//! min/median/max summary line — because CI only needs the benches to run
//! and the artifact printing lives in the bench bodies themselves. The
//! harness honors `--test` (run every body exactly once, no timing), which
//! `cargo bench -- --test` uses as a smoke mode, and ignores the other
//! libtest/criterion flags cargo may pass (`--bench`, filters).

use std::time::{Duration, Instant};

/// An opaque identity function that prevents the optimizer from deleting
/// a benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared work per iteration; recorded so group reports can show a rate.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Times one benchmark body. Handed to the closure given to
/// `bench_function`; call [`Bencher::iter`] exactly as with upstream.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` repeatedly (once per sample, or exactly once in `--test`
    /// mode) and records wall-clock time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.samples.push(Duration::ZERO);
            return;
        }
        // One untimed warmup call, then `sample_size` timed samples.
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn summarize(name: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{name:<44} (no samples)");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let max = sorted[sorted.len() - 1];
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median > Duration::ZERO => {
            format!("  {:>12.0} elem/s", n as f64 / median.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
            format!("  {:>12.0} B/s", n as f64 / median.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("{name:<44} time: [{min:>10.3?} {median:>10.3?} {max:>10.3?}]{rate}");
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            // Upstream defaults to 100 samples; every group here overrides
            // to 10–20, so a small default keeps unconfigured benches fast.
            sample_size: 10,
            test_mode: false,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark (builder style, as
    /// in upstream's config chaining).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Applies command-line flags: `--test` switches to run-once smoke
    /// mode; everything else cargo passes (`--bench`, name filters) is
    /// accepted and ignored.
    pub fn configure_from_args(&mut self) {
        if std::env::args().any(|a| a == "--test") {
            self.test_mode = true;
        }
    }

    /// Benchmarks `f`, printing a one-line wall-clock summary.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            test_mode: self.test_mode,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        if self.test_mode {
            println!("{id:<44} ok (--test mode, ran once)");
        } else {
            summarize(&id, &b.samples, None);
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }
}

/// A set of benchmarks sharing a name prefix and optional overrides.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        let mut b = Bencher {
            test_mode: self.criterion.test_mode,
            sample_size: self.sample_size.unwrap_or(self.criterion.sample_size),
            samples: Vec::new(),
        };
        f(&mut b);
        if self.criterion.test_mode {
            println!("{id:<44} ok (--test mode, ran once)");
        } else {
            summarize(&id, &b.samples, self.throughput);
        }
        self
    }

    pub fn finish(self) {}
}

/// Upstream-compatible group declaration. Both the named-field form used
/// in this workspace and the simple positional form are accepted.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion = $config;
            criterion.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generates `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(2);
        group.throughput(Throughput::Elements(4));
        group.bench_function("sum", |b| b.iter(|| black_box((0..4u64).sum::<u64>())));
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(2);
        targets = sample_bench
    }

    #[test]
    fn groups_run_to_completion() {
        benches();
    }

    #[test]
    fn bencher_counts_samples() {
        let mut b = Bencher {
            test_mode: false,
            sample_size: 3,
            samples: Vec::new(),
        };
        b.iter(|| black_box(42));
        assert_eq!(b.samples.len(), 3);
        let mut t = Bencher {
            test_mode: true,
            sample_size: 3,
            samples: Vec::new(),
        };
        t.iter(|| black_box(42));
        assert_eq!(t.samples.len(), 1);
    }
}
