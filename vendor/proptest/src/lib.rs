//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no cargo registry, so the workspace vendors the
//! slice of proptest's API its test suites use: the [`Strategy`] trait over
//! integer/float ranges, tuples, [`Just`], `prop_oneof!`, and
//! `collection::vec`; the `proptest!` test-harness macro (including
//! `#![proptest_config(...)]`); and the `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` assertion macros.
//!
//! Unlike upstream there is no shrinking: a failing case panics with the
//! generated inputs printed, which is enough to reproduce (generation is
//! fully deterministic — each test's RNG is seeded from its name, so a
//! failure replays identically on every run). Rejected cases
//! (`prop_assume!`) are skipped rather than re-drawn.

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::ops::Range;

    /// A source of random values of one type.
    ///
    /// Upstream proptest couples this with a shrinking `ValueTree`; this
    /// stand-in only needs generation.
    pub trait Strategy {
        type Value: Debug;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy_int {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                    self.start.wrapping_add(hi as $t)
                }
            }
        )+};
    }

    impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + (rng.next_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }

    /// Uniform choice between boxed strategies of one value type; the
    /// target of `prop_oneof!`.
    pub struct Union<T: Debug> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T: Debug> Union<T> {
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len());
            self.options[idx].generate(rng)
        }
    }

    /// Boxes a strategy for storage in a [`Union`]; used by `prop_oneof!`
    /// so the macro body never has to name the value type.
    pub fn box_strategy<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub struct VecStrategy<S: Strategy> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec-length range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end - self.size.start;
            let len = self.size.start + rng.below(span.max(1));
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-test deterministic RNG (SplitMix64). Seeded from the test name
    /// so every `cargo test` run replays the identical case sequence.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the test name gives a stable, well-mixed seed.
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: hash }
        }

        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        #[inline]
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform index in `0..n` (`n > 0`).
        #[inline]
        pub fn below(&mut self, n: usize) -> usize {
            ((u128::from(self.next_u64()) * n as u128) >> 64) as usize
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed; the test fails.
        Fail(String),
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject,
    }

    /// Runner configuration; only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; this suite's explicit configs go
            // no higher than 64, so match upstream for unconfigured blocks.
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests. Supports the upstream shape used here:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     /// docs
///     #[test]
///     fn name(arg in strategy, ...) { body }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items!(($config) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut __rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for __case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut __rng);)+
                let __case_desc = ::std::format!(
                    concat!($(stringify!($arg), " = {:?}, "),+),
                    $(&$arg),+
                );
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    match ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                        move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        },
                    )) {
                        ::std::result::Result::Ok(r) => r,
                        ::std::result::Result::Err(payload) => {
                            ::std::eprintln!(
                                "proptest case #{} panicked with inputs: {}",
                                __case,
                                __case_desc
                            );
                            ::std::panic::resume_unwind(payload);
                        }
                    };
                match __result {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        ::std::panic!(
                            "proptest case #{} failed: {}\n  inputs: {}",
                            __case,
                            msg,
                            __case_desc
                        );
                    }
                }
            }
        }
        $crate::__proptest_items!(($config) $($rest)*);
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert_eq!(left, right)`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// `prop_assert_ne!(left, right)`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// `prop_assume!(cond)` — skips the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice between strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::box_strategy($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 5u64..10, y in -2.0f64..3.0, z in 0usize..4) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-2.0..3.0).contains(&y));
            prop_assert!(z < 4);
        }

        #[test]
        fn vec_lengths_respected(
            v in crate::collection::vec(0u64..100, 2..7),
            pair in crate::collection::vec((-1.0f64..1.0, 0u32..3), 1..4),
        ) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 100));
            prop_assert!((1..4).contains(&pair.len()));
        }

        #[test]
        fn oneof_and_just(choice in prop_oneof![Just(1u8), Just(2u8), Just(3u8)]) {
            prop_assert!((1..=3).contains(&choice));
            prop_assert_eq!(choice, choice);
            prop_assert_ne!(choice, 0);
        }

        #[test]
        fn assume_skips(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runners() {
        let mut a = crate::test_runner::TestRng::for_test("same");
        let mut b = crate::test_runner::TestRng::for_test("same");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::for_test("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn strategy_trait_object_works() {
        fn takes_impl(s: impl Strategy<Value = u8>) -> u8 {
            let mut rng = crate::test_runner::TestRng::for_test("obj");
            s.generate(&mut rng)
        }
        let v = takes_impl(prop_oneof![Just(7u8)]);
        assert_eq!(v, 7);
    }
}
