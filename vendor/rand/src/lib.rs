//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to a cargo registry, so the workspace
//! vendors the narrow slice of the rand 0.9 API it actually uses: the
//! [`Rng`]/[`SeedableRng`] traits, [`rngs::SmallRng`], uniform `f64` in
//! `[0, 1)`, and `random_range` over half-open integer ranges. The
//! generator is xoshiro256++ seeded through SplitMix64 — the same family
//! rand's own `SmallRng` uses on 64-bit targets — so streams are of
//! comparable statistical quality, though not bit-identical to upstream.
//!
//! Everything here is deterministic given the seed; no OS entropy is ever
//! touched, which also keeps trace generation reproducible across runs.

use std::ops::Range;

/// Construction of a generator from seed material.
///
/// Upstream rand derives `seed_from_u64` from `from_seed`; the workspace
/// only ever seeds from a `u64`, so that is the whole trait here.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling of a value from the "standard" distribution of a type.
///
/// Mirrors rand's `StandardUniform` distribution: `f64` is uniform in
/// `[0, 1)` with 53 bits of precision.
pub trait StandardSample: Sized {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits → uniform in [0, 1) with full f64 precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform sampling from a half-open `low..high` range.
pub trait SampleUniform: Sized {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<$t>) -> $t {
                assert!(
                    range.start < range.end,
                    "cannot sample from empty range {}..{}",
                    range.start,
                    range.end
                );
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                // Multiply-shift range reduction (Lemire); the tiny bias is
                // irrelevant for workload synthesis and keeps this branch-free.
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                range.start.wrapping_add(hi as $t)
            }
        }
    )+};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<f64>) -> f64 {
        assert!(
            range.start < range.end,
            "cannot sample from empty f64 range"
        );
        let u = f64::sample(rng);
        range.start + u * (range.end - range.start)
    }
}

/// The user-facing random-number trait: one entropy source plus the
/// generic sampling helpers the workspace calls.
pub trait Rng {
    /// Returns the next 64 bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// Samples from the standard distribution of `T` (e.g. `f64` in `[0, 1)`).
    #[inline]
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from the half-open range `low..high`.
    #[inline]
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

pub mod rngs {
    use super::SeedableRng;

    /// A small, fast, non-cryptographic generator: xoshiro256++.
    ///
    /// Matches the role (not the exact stream) of rand's `SmallRng` on
    /// 64-bit platforms.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // Expand the 64-bit seed through SplitMix64, exactly the
            // scheme Vigna recommends for seeding xoshiro state.
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl super::Rng for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            let v = rng.random_range(0..8u8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 values should appear");
        for _ in 0..1_000 {
            let v = rng.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(0..usize::MAX / 2 + 7);
            assert!(w < usize::MAX / 2 + 7);
        }
    }

    #[test]
    fn works_through_unsized_rng() {
        fn sample_dyn<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random::<f64>()
        }
        let mut rng = SmallRng::seed_from_u64(3);
        let x = sample_dyn(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
